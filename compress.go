package cppcache

import "cppcache/internal/compress"

// The paper's value-compression scheme (§2.1): a 32-bit word stored at a
// given address is compressible to 16 bits when its 18 high-order bits are
// all zeros or all ones (small value), or when its 17 high-order bits
// equal those of the address (pointer into the same 32K chunk).

// SmallValueMin and SmallValueMax bound the compressible small-value range.
const (
	SmallValueMin = compress.SmallMin // -16384
	SmallValueMax = compress.SmallMax // 16383
)

// CompressibleWord reports whether value, stored at addr, is compressible.
func CompressibleWord(value, addr uint32) bool {
	return compress.Compressible(value, addr)
}

// CompressWord encodes value (stored at addr) into the 16-bit compressed
// form: bit 15 is the VT flag (pointer vs small value), bits 14..0 the
// payload. ok is false when the value is incompressible.
func CompressWord(value, addr uint32) (compressed uint16, ok bool) {
	c, ok := compress.Compress(value, addr)
	return uint16(c), ok
}

// DecompressWord reconstructs the original word from its compressed form
// and the address it is read from.
func DecompressWord(compressed uint16, addr uint32) uint32 {
	return compress.Decompress(compress.Compressed(compressed), addr)
}

// CompressedLineWords returns the compressed transfer size, in 32-bit word
// units, of a sequence of words stored consecutively from base (each
// compressible word costs half a word of bandwidth).
func CompressedLineWords(words []uint32, base uint32) float64 {
	return float64(compress.LineHalves(words, base)) / 2
}

// Gate-depth figures of the combinational compressor/decompressor (§3.2).
const (
	CompressorGateDelay   = compress.CompressDelayGates   // 8
	DecompressorGateDelay = compress.DecompressDelayGates // 2
)

func compressWidth(value, addr uint32, payloadBits int) bool {
	return compress.CompressibleWidth(value, addr, payloadBits)
}

// CompressedLineHalves returns the compressed size, in 16-bit half-words,
// of a line of words stored consecutively from base under the named
// scheme ("" for the paper's default; see Compressors).
func CompressedLineHalves(scheme string, words []uint32, base uint32) (int, error) {
	c, err := compress.Get(scheme)
	if err != nil {
		return 0, err
	}
	return c.LineHalves(words, base), nil
}

// CompressorDelays returns the named scheme's combinational gate-depth
// figures (compressor, decompressor), the latency axis of the zoo
// comparison.
func CompressorDelays(scheme string) (compressGates, decompressGates int, err error) {
	c, err := compress.Get(scheme)
	if err != nil {
		return 0, 0, err
	}
	return c.CompressorDelayGates(), c.DecompressorDelayGates(), nil
}
