package cppcache

// Per-scheme golden regression pinning: the headline BCC-vs-BC traffic
// metrics of every registered compression scheme, across all 14
// workloads, are pinned to testdata/golden_schemes.json. The simulator is
// fully deterministic, so drift here means the modelled behaviour of a
// codec or the bus accounting changed — intended changes regenerate the
// file with
//
//	go test -run TestGoldenSchemes -update-schemes
//
// and the diff of golden_schemes.json becomes part of the review.

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateSchemes = flag.Bool("update-schemes", false, "rewrite testdata/golden_schemes.json from current simulation results")

// schemesGoldenTolerance is the allowed relative drift per metric; see
// internal/experiments/golden_test.go for rationale.
const schemesGoldenTolerance = 0.02

type schemeGoldenEntry struct {
	TrafficWords float64 `json:"traffic_words"`
	TrafficRatio float64 `json:"traffic_ratio"` // vs uncompressed BC
}

type schemesGoldenFile struct {
	Scale int `json:"scale"`
	// Baseline is the uncompressed BC off-chip traffic per workload.
	Baseline map[string]float64 `json:"baseline_bc_traffic_words"`
	// Schemes maps scheme -> workload -> pinned metrics.
	Schemes map[string]map[string]schemeGoldenEntry `json:"schemes"`
}

// schemesGoldenResults runs every workload on BC and on BCC under each
// registered scheme (functional mode: traffic and misses are exact).
func schemesGoldenResults(t *testing.T, scale int) schemesGoldenFile {
	t.Helper()
	gf := schemesGoldenFile{
		Scale:    scale,
		Baseline: map[string]float64{},
		Schemes:  map[string]map[string]schemeGoldenEntry{},
	}
	for _, scheme := range Compressors() {
		gf.Schemes[scheme] = map[string]schemeGoldenEntry{}
	}
	for _, bench := range Benchmarks() {
		base, err := Run(bench, BC, Options{Scale: scale, FunctionalOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		gf.Baseline[bench] = base.MemTrafficWords
		for _, scheme := range Compressors() {
			r, err := Run(bench, BCC, Options{Scale: scale, FunctionalOnly: true, Compressor: scheme})
			if err != nil {
				t.Fatal(err)
			}
			gf.Schemes[scheme][bench] = schemeGoldenEntry{
				TrafficWords: r.MemTrafficWords,
				TrafficRatio: r.MemTrafficWords / base.MemTrafficWords,
			}
		}
	}
	return gf
}

// approx reports |got-want| within the golden tolerance (relative, with
// an absolute floor for near-zero values).
func approx(got, want float64) bool {
	return math.Abs(got-want) <= schemesGoldenTolerance*math.Max(math.Abs(want), 0.05)
}

func TestGoldenSchemes(t *testing.T) {
	const scale = 1
	got := schemesGoldenResults(t, scale)
	path := filepath.Join("testdata", "golden_schemes.json")

	if *updateSchemes {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-schemes)", err)
	}
	var want schemesGoldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if want.Scale != scale {
		t.Fatalf("golden file pinned at scale %d, test runs scale %d", want.Scale, scale)
	}

	// Field-by-field diff, both directions: every pinned value must match
	// the current run, and every current value must be pinned.
	for bench, w := range want.Baseline {
		g, ok := got.Baseline[bench]
		if !ok {
			t.Errorf("baseline/%s: missing from current results", bench)
			continue
		}
		if !approx(g, w) {
			t.Errorf("baseline/%s = %.1f, golden %.1f; if intended, rerun with -update-schemes", bench, g, w)
		}
	}
	for bench := range got.Baseline {
		if _, ok := want.Baseline[bench]; !ok {
			t.Errorf("baseline/%s: present in results but not pinned; rerun with -update-schemes", bench)
		}
	}
	for scheme, benches := range want.Schemes {
		for bench, w := range benches {
			g, ok := got.Schemes[scheme][bench]
			if !ok {
				t.Errorf("%s/%s: missing from current results", scheme, bench)
				continue
			}
			if !approx(g.TrafficWords, w.TrafficWords) {
				t.Errorf("%s/%s traffic_words = %.1f, golden %.1f; if intended, rerun with -update-schemes",
					scheme, bench, g.TrafficWords, w.TrafficWords)
			}
			if !approx(g.TrafficRatio, w.TrafficRatio) {
				t.Errorf("%s/%s traffic_ratio = %.4f, golden %.4f; if intended, rerun with -update-schemes",
					scheme, bench, g.TrafficRatio, w.TrafficRatio)
			}
		}
	}
	for scheme, benches := range got.Schemes {
		for bench := range benches {
			if _, ok := want.Schemes[scheme][bench]; !ok {
				t.Errorf("%s/%s: present in results but not pinned; rerun with -update-schemes", scheme, bench)
			}
		}
	}

	// Independent of the exact pinned values, the structural facts must
	// hold: every scheme compresses relative to BC on every workload
	// (ratio in (0, 1]), and the paper's scheme sits in [0.5, 1] — each
	// word moves one or two halves, never less.
	for scheme, benches := range got.Schemes {
		for bench, e := range benches {
			if e.TrafficRatio <= 0 || e.TrafficRatio > 1 {
				t.Errorf("%s/%s ratio %.4f outside (0, 1]", scheme, bench, e.TrafficRatio)
			}
		}
		if scheme == DefaultCompressor() {
			for bench, e := range benches {
				if e.TrafficRatio < 0.5 {
					t.Errorf("paper/%s ratio %.4f below the half-word floor", bench, e.TrafficRatio)
				}
			}
		}
	}
}
