package cppcache

import (
	"reflect"
	"testing"

	"cppcache/internal/span"
)

// TestTracingIsInert: attaching a span to an observed run must not change
// any simulation output — the result struct, the interval snapshot series
// and the rendered metrics CSV must be byte-identical to an untraced run —
// while the tracer itself captures the full stage breakdown.
func TestTracingIsInert(t *testing.T) {
	for _, cfg := range []CacheConfig{CPP, BC} {
		for _, functional := range []bool{true, false} {
			opts := Options{Scale: 1, FunctionalOnly: functional}
			oo := ObserveOptions{IntervalCycles: 5000}
			base, baseObs, err := RunObserved("olden.treeadd", cfg, opts, oo)
			if err != nil {
				t.Fatal(err)
			}

			tr := span.New(0)
			root := tr.Start("run", nil)
			ooTraced := oo
			ooTraced.Span = root
			got, gotObs, err := RunObserved("olden.treeadd", cfg, opts, ooTraced)
			root.End()
			if err != nil {
				t.Fatal(err)
			}

			if got != base {
				t.Errorf("%s functional=%v: results diverged under tracing\n  base: %+v\n  got:  %+v",
					cfg, functional, base, got)
			}
			if !reflect.DeepEqual(baseObs.Snapshots(), gotObs.Snapshots()) {
				t.Errorf("%s functional=%v: snapshot series diverged under tracing", cfg, functional)
			}
			if baseObs.MetricsCSV() != gotObs.MetricsCSV() {
				t.Errorf("%s functional=%v: metrics CSV diverged under tracing", cfg, functional)
			}

			// The traced run must have captured the full stage anatomy,
			// correctly nested and closed.
			stages := map[string]span.SpanData{}
			for _, d := range tr.Snapshot() {
				stages[d.Name] = d
			}
			for _, name := range []string{"workload.build", "sim.build", "sim.run", "sim.finish"} {
				d, ok := stages[name]
				if !ok {
					t.Fatalf("%s functional=%v: no %q span (have %d spans)", cfg, functional, name, tr.Len())
				}
				if d.ParentID != root.ID() {
					t.Errorf("%s span not parented on the run root", name)
				}
				if d.End.IsZero() {
					t.Errorf("%s span left open", name)
				}
				if d.Start.Before(stages["workload.build"].Start) {
					t.Errorf("%s span starts before workload.build", name)
				}
			}
			wb := stages["workload.build"]
			if len(wb.Events) != 1 || wb.Events[0].Name != "decode.cache" {
				t.Errorf("workload.build events = %+v, want one decode.cache event", wb.Events)
			}
		}
	}
}

// TestTracingNilSpanRecordsNothing: the disabled path must leave the
// tracer untouched (the ObserveOptions zero value carries a nil span, and
// every hook downstream must no-op through it).
func TestTracingNilSpanRecordsNothing(t *testing.T) {
	_, _, err := RunObserved("olden.treeadd", BC, Options{Scale: 1, FunctionalOnly: true}, ObserveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var nilSpan *span.Span
	_, _, err = RunObserved("olden.treeadd", BC, Options{Scale: 1, FunctionalOnly: true}, ObserveOptions{Span: nilSpan})
	if err != nil {
		t.Fatal(err)
	}
}
