package cppcache

import (
	"strings"
	"testing"
)

// FuzzResolveBenchmark hammers the public workload resolver with
// arbitrary names: it must never panic, resolution must be idempotent
// (a resolved name resolves to itself), and only catalogued benchmarks
// may come back.
func FuzzResolveBenchmark(f *testing.F) {
	for _, b := range Benchmarks() {
		f.Add(b)
		if i := strings.LastIndexByte(b, '.'); i >= 0 {
			f.Add(b[i+1:])
		}
	}
	f.Add("")
	f.Add(".")
	f.Add("olden.")
	f.Add("OLDEN.MST")
	f.Add("mst.mst")
	f.Add(strings.Repeat("x", 4096))

	known := make(map[string]bool)
	for _, b := range Benchmarks() {
		known[b] = true
	}
	f.Fuzz(func(t *testing.T, name string) {
		resolved, err := ResolveBenchmark(name)
		if err != nil {
			return
		}
		if !known[resolved] {
			t.Errorf("ResolveBenchmark(%q) = %q, not in the catalogue", name, resolved)
		}
		again, err := ResolveBenchmark(resolved)
		if err != nil || again != resolved {
			t.Errorf("resolution not idempotent: %q -> %q -> %q (%v)", name, resolved, again, err)
		}
	})
}
