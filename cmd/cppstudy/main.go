// Command cppstudy reproduces the value-compressibility study (Figure 3)
// and, optionally, the compression-width ablation.
//
// Usage:
//
//	cppstudy [-scale 4] [-widths]
//
// Phase-plot mode instead runs one workload on several configurations
// with interval metrics attached and prints per-phase behaviour plus a
// difference table (last configuration minus first):
//
//	cppstudy -phase olden.mst -configs BC,CPP -interval 10000 [-out prefix]
//
// Compressor-zoo mode compares the registered line-compression schemes:
// every workload runs on BCC under each scheme (functional mode), and the
// table reports off-chip traffic as a ratio to the uncompressed BC
// baseline (lower is better), with per-scheme gate-delay figures:
//
//	cppstudy -compressors [-scale 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cppcache"
	"cppcache/internal/compress"
	"cppcache/internal/cpu"
	"cppcache/internal/isa"
	"cppcache/internal/memsys"
	"cppcache/internal/obs"
	"cppcache/internal/sim"
	"cppcache/internal/stats"
	"cppcache/internal/workload"
)

// phaseCols are the derived per-interval metrics the phase table shows.
var phaseCols = []string{"ipc", "l1_miss_rate", "traffic_words", "comp_ratio", "prefetch_hit_rate"}

// phaseTable renders one observed run's snapshots as a table with one row
// per interval ordinal, so tables from different configurations share row
// names and can be diffed.
func phaseTable(config string, snaps []obs.Snapshot) *stats.Table {
	rows := make([]string, len(snaps))
	for i := range snaps {
		rows[i] = fmt.Sprintf("interval-%03d", i)
	}
	t := stats.NewTable(config, rows, phaseCols)
	for i, s := range snaps {
		t.Set(rows[i], "ipc", s.IPC())
		t.Set(rows[i], "l1_miss_rate", s.L1MissRate())
		t.Set(rows[i], "traffic_words", s.TrafficWords())
		t.Set(rows[i], "comp_ratio", s.CompRatio())
		t.Set(rows[i], "prefetch_hit_rate", s.PrefetchHitRate())
	}
	return t
}

// runPhase executes the phase-plot mode and returns an exit status.
func runPhase(bench string, configs []string, interval int64, scale int, outPrefix string) int {
	if interval <= 0 {
		fmt.Fprintln(os.Stderr, "cppstudy: -phase requires -interval > 0")
		return 2
	}
	if len(configs) < 1 {
		fmt.Fprintln(os.Stderr, "cppstudy: -configs must name at least one configuration")
		return 2
	}
	sc := scale
	if sc == 0 {
		sc = workload.DefaultScale
	}
	p, err := workload.BuildShared(bench, sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cppstudy:", err)
		return 1
	}
	lat := memsys.DefaultLatencies()
	tables := make([]*stats.Table, 0, len(configs))
	for _, cfg := range configs {
		rec := obs.New(obs.Config{Interval: interval})
		r, err := sim.RunObserved(p, cfg, lat, cpu.DefaultParams(), rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppstudy:", err)
			return 1
		}
		snaps := rec.Snapshots()
		fmt.Printf("%s on %s: %d cycles, %d intervals of %d\n",
			r.Benchmark, r.Config, r.CPU.Cycles, len(snaps), interval)
		t := phaseTable(cfg, snaps)
		tables = append(tables, t)
		if outPrefix != "" {
			name := fmt.Sprintf("%s-%s.csv", outPrefix, strings.ToLower(cfg))
			if err := os.WriteFile(name, []byte(rec.MetricsCSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "cppstudy:", err)
				return 1
			}
			fmt.Printf("  wrote %s\n", name)
		}
	}
	fmt.Println()
	for _, t := range tables {
		fmt.Println(t)
	}
	if len(tables) >= 2 {
		d := tables[len(tables)-1].Diff(tables[0])
		d.Note = "per-interval difference over the intervals both runs reached"
		fmt.Println(d)
	}
	return 0
}

// runCompressors executes the compressor-zoo comparison and returns an
// exit status: one BCC run per workload x scheme (functional mode — the
// schemes share miss behaviour and differ only in bus traffic), reported
// as traffic ratios to the uncompressed BC baseline. Workload rows fan
// out over the scheduler's workers; the table is identical for any
// worker count.
func runCompressors(scale, workers int) int {
	g, err := cppcache.SchemeTraffic(scale, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cppstudy:", err)
		return 1
	}
	fmt.Println(g)

	fmt.Println("combinational gate depth per scheme:")
	fmt.Printf("%-8s %12s %12s\n", "scheme", "compress", "decompress")
	for _, scheme := range cppcache.Compressors() {
		c, d, err := cppcache.CompressorDelays(scheme)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppstudy:", err)
			return 1
		}
		fmt.Printf("%-8s %11dg %11dg\n", scheme, c, d)
	}
	return 0
}

func main() {
	var (
		scale  = flag.Int("scale", 0, "workload scale (0 = default)")
		widths = flag.Bool("widths", false, "also sweep the compressed-word width")

		phase    = flag.String("phase", "", "phase-plot mode: run this workload with interval metrics")
		configs  = flag.String("configs", "BC,CPP", "comma-separated configurations for -phase")
		interval = flag.Int64("interval", 10000, "snapshot cadence in cycles for -phase")
		out      = flag.String("out", "", "prefix for per-config interval CSVs written by -phase")

		compressors = flag.Bool("compressors", false, "compressor-zoo mode: compare schemes' BCC traffic across all workloads")

		parallel = flag.Int("parallel", 0, "simulation workers for sweeps (0 = one per CPU)")
	)
	flag.Parse()

	if *phase != "" {
		os.Exit(runPhase(*phase, strings.Split(*configs, ","), *interval, *scale, *out))
	}
	if *compressors {
		os.Exit(runCompressors(*scale, *parallel))
	}

	s := cppcache.NewSuite(cppcache.SuiteOptions{Scale: *scale, Workers: *parallel})
	t, err := s.Figure3()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cppstudy:", err)
		os.Exit(1)
	}
	fmt.Println(t)

	var avg float64
	for _, r := range t.Rows {
		avg += t.Get(r, "small") + t.Get(r, "pointer")
	}
	fmt.Printf("average compressible: %.1f%% (paper: 59%%)\n\n", 100*avg/float64(len(t.Rows)))

	if !*widths {
		return
	}
	sc := *scale
	if sc == 0 {
		sc = workload.DefaultScale
	}
	fmt.Println("compression-width ablation (fraction compressible per payload width):")
	fmt.Printf("%-22s %8s %8s %8s %8s\n", "benchmark", "7b", "11b", "15b", "23b")
	for _, bm := range workload.All() {
		p := bm.Build(sc)
		var tot float64
		counts := map[int]float64{}
		st := p.Stream()
		for {
			in, ok := st.Next()
			if !ok {
				break
			}
			if !in.Op.IsMem() {
				continue
			}
			tot++
			for _, w := range []int{7, 11, 15, 23} {
				if compress.CompressibleWidth(in.Value, in.Addr, w) {
					counts[w]++
				}
			}
		}
		_ = isa.OpLoad
		fmt.Printf("%-22s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", bm.Name,
			100*counts[7]/tot, 100*counts[11]/tot, 100*counts[15]/tot, 100*counts[23]/tot)
	}
}
