// Command cppstudy reproduces the value-compressibility study (Figure 3)
// and, optionally, the compression-width ablation.
//
// Usage:
//
//	cppstudy [-scale 4] [-widths]
package main

import (
	"flag"
	"fmt"
	"os"

	"cppcache"
	"cppcache/internal/compress"
	"cppcache/internal/isa"
	"cppcache/internal/workload"
)

func main() {
	var (
		scale  = flag.Int("scale", 0, "workload scale (0 = default)")
		widths = flag.Bool("widths", false, "also sweep the compressed-word width")
	)
	flag.Parse()

	s := cppcache.NewSuite(cppcache.SuiteOptions{Scale: *scale})
	t, err := s.Figure3()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cppstudy:", err)
		os.Exit(1)
	}
	fmt.Println(t)

	var avg float64
	for _, r := range t.Rows {
		avg += t.Get(r, "small") + t.Get(r, "pointer")
	}
	fmt.Printf("average compressible: %.1f%% (paper: 59%%)\n\n", 100*avg/float64(len(t.Rows)))

	if !*widths {
		return
	}
	sc := *scale
	if sc == 0 {
		sc = workload.DefaultScale
	}
	fmt.Println("compression-width ablation (fraction compressible per payload width):")
	fmt.Printf("%-22s %8s %8s %8s %8s\n", "benchmark", "7b", "11b", "15b", "23b")
	for _, bm := range workload.All() {
		p := bm.Build(sc)
		var tot float64
		counts := map[int]float64{}
		st := p.Stream()
		for {
			in, ok := st.Next()
			if !ok {
				break
			}
			if !in.Op.IsMem() {
				continue
			}
			tot++
			for _, w := range []int{7, 11, 15, 23} {
				if compress.CompressibleWidth(in.Value, in.Addr, w) {
					counts[w]++
				}
			}
		}
		_ = isa.OpLoad
		fmt.Printf("%-22s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", bm.Name,
			100*counts[7]/tot, 100*counts[11]/tot, 100*counts[15]/tot, 100*counts[23]/tot)
	}
}
