// Command cpptrace generates benchmark traces in the cppcache binary
// format, or inspects existing trace files.
//
// Usage:
//
//	cpptrace -bench olden.mst -scale 2 -o mst.trace
//	cpptrace -info mst.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cppcache"
	"cppcache/internal/isa"
	"cppcache/internal/trace"
)

func main() {
	var (
		bench = flag.String("bench", "", "benchmark to trace")
		scale = flag.Int("scale", 0, "workload scale (0 = default)")
		out   = flag.String("o", "", "output file (default stdout)")
		info  = flag.String("info", "", "inspect an existing trace file instead")
	)
	flag.Parse()

	if *info != "" {
		if err := inspect(*info); err != nil {
			fmt.Fprintln(os.Stderr, "cpptrace:", err)
			os.Exit(1)
		}
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "cpptrace: -bench or -info required")
		os.Exit(2)
	}
	p, err := cppcache.BuildBenchmark(*bench, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpptrace:", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpptrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	n, err := p.WriteTo(w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cpptrace:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d instructions\n", n)
}

func inspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	var mix isa.Mix
	for {
		in, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		mix.Add(in)
	}
	fmt.Printf("instructions  %d\n", mix.Total)
	for _, op := range []isa.Op{isa.OpALU, isa.OpMul, isa.OpDiv, isa.OpFALU, isa.OpFMul, isa.OpFDiv, isa.OpLoad, isa.OpStore, isa.OpBranch} {
		if mix.Counts[op] > 0 {
			fmt.Printf("%-8s %9d (%.1f%%)\n", op, mix.Counts[op], 100*mix.Frac(op))
		}
	}
	return nil
}
