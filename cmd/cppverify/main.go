// Command cppverify cross-checks the cache configurations against the
// oracle memory model on randomized and workload-derived access streams,
// asserting the internal/verify invariants throughout. On a divergence it
// minimizes the failing stream to a short repro and prints it.
//
// Usage:
//
//	cppverify [-seeds 100] [-ops 5000] [-configs BC,BCC,HAC,BCP,CPP]
//	          [-compressor all] [-workloads olden.treeadd,...] [-scale 1]
//	          [-parallel N] [-trace-out spans.json] [-v]
//
// -compressor selects the line-compression schemes to verify (default
// "all": every registered scheme). Configurations that compress bus
// transfers (BCC, LCC) are expanded to one run per selected scheme; the
// other configurations run once under the paper's scheme.
//
// Exit status is 0 when every run is clean, 1 on any divergence.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"cppcache/internal/compress"
	"cppcache/internal/sched"
	"cppcache/internal/sim"
	"cppcache/internal/span"
	"cppcache/internal/verify"
	"cppcache/internal/workload"
)

type job struct {
	config string
	stream *verify.Stream
	label  string
}

func main() {
	var (
		seeds     = flag.Int("seeds", 100, "number of random stream seeds per configuration")
		base      = flag.Int64("seed", 1, "first seed")
		ops       = flag.Int("ops", 5000, "ops per random stream")
		configs   = flag.String("configs", strings.Join(sim.Configs(), ","), "comma-separated configurations (also accepts VC, LCC)")
		schemes   = flag.String("compressor", "all", "comma-separated compression schemes for the compressing configs (\"all\" for every registered scheme)")
		workloads = flag.String("workloads", "", "comma-separated workload traces to replay (\"all\" for every benchmark)")
		scale     = flag.Int("scale", 1, "workload scale for -workloads")
		deep      = flag.Int("deep", 256, "full-state invariant scan cadence in ops")
		parallel  = flag.Int("parallel", 0, "parallel verification workers (0 = one per CPU)")
		verbose   = flag.Bool("v", false, "print one line per clean run")
		traceOut  = flag.String("trace-out", "", "write a Chrome trace_event dump of the verification battery's spans to this file")
	)
	flag.Parse()

	var tracer *span.Tracer
	var root *span.Span
	if *traceOut != "" {
		tracer = span.New(0)
		root = tracer.Start("cppverify", nil)
	}
	dumpTrace := func() {
		if tracer == nil {
			return
		}
		root.End()
		if err := os.WriteFile(*traceOut, tracer.Chrome(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cppverify:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "trace: %d spans -> %s\n", tracer.Len(), *traceOut)
	}

	cfgList := splitList(*configs)
	if len(cfgList) == 0 {
		fmt.Fprintln(os.Stderr, "cppverify: no configurations selected")
		os.Exit(2)
	}
	known := map[string]bool{}
	for _, c := range append(sim.Configs(), sim.ExtraConfigs()...) {
		known[c] = true
	}
	for _, c := range cfgList {
		if !known[c] {
			fmt.Fprintf(os.Stderr, "cppverify: unknown configuration %q\n", c)
			os.Exit(2)
		}
	}

	schemeList := schemeArg(*schemes)
	for _, s := range schemeList {
		if _, err := compress.Get(s); err != nil {
			fmt.Fprintln(os.Stderr, "cppverify:", err)
			os.Exit(2)
		}
	}
	// Expand the config x scheme matrix: compressing configs get one run
	// per selected scheme, the rest run once under the paper's default —
	// but only when the default is among the selected schemes.
	var runList []string
	for _, c := range cfgList {
		if compresses(c) {
			for _, s := range schemeList {
				runList = append(runList, sim.WithCompressor(c, s))
			}
			continue
		}
		for _, s := range schemeList {
			if sim.ValidateCompressor(c, s) == nil {
				runList = append(runList, c)
				break
			}
		}
	}
	if len(runList) == 0 {
		fmt.Fprintf(os.Stderr, "cppverify: no runnable config x scheme combinations (-compressor %s applies to %s)\n",
			strings.Join(schemeList, ","), strings.Join(sim.CompressorConfigs(), " and "))
		os.Exit(2)
	}

	var streams []*verify.Stream
	for _, seed := range verify.Seeds(*base, *seeds) {
		streams = append(streams, verify.RandomStream(seed, *ops))
	}
	for _, name := range workloadList(*workloads) {
		s, err := verify.WorkloadStream(name, *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppverify:", err)
			os.Exit(2)
		}
		streams = append(streams, s)
	}

	if len(streams) == 0 {
		fmt.Fprintln(os.Stderr, "cppverify: nothing to verify (use -seeds and/or -workloads)")
		os.Exit(2)
	}

	// Fan the stream x config battery over the work-stealing scheduler and
	// report in job order afterwards, so the output (and the choice of
	// "first" divergence to minimize) is identical for any worker count.
	var jobList []job
	for _, s := range streams {
		for _, c := range runList {
			jobList = append(jobList, job{config: c, stream: s, label: s.Name})
		}
	}
	opt := verify.Options{DeepEvery: *deep}
	divs := make([]*verify.Divergence, len(jobList))
	if err := sched.DoTraced(context.Background(), len(jobList), *parallel, root,
		func(i int) string { return "verify " + jobList[i].config + "/" + jobList[i].label },
		func(_ context.Context, _, i int) error {
			d, err := verify.CheckConfig(jobList[i].config, jobList[i].stream, opt)
			if err != nil {
				return err
			}
			divs[i] = d
			return nil
		}); err != nil {
		// Config was validated up front; this is a bug.
		fmt.Fprintln(os.Stderr, "cppverify:", err)
		os.Exit(2)
	}
	ran := len(jobList)
	var divergent []*verify.Divergence
	for i, d := range divs {
		if d != nil {
			divergent = append(divergent, d)
			fmt.Printf("FAIL %-4s %s: %v\n", jobList[i].config, jobList[i].label, d)
		} else if *verbose {
			fmt.Printf("ok   %-4s %s\n", jobList[i].config, jobList[i].label)
		}
	}

	dumpTrace()
	if len(divergent) == 0 {
		fmt.Printf("PASS: %d runs clean (%d streams x %d configs), invariants: %s\n",
			ran, len(streams), len(runList), strings.Join(verify.Invariants(), ", "))
		return
	}

	// Minimize the first divergence to a short repro.
	first := divergent[0]
	var full *verify.Stream
	for _, s := range streams {
		if s.Name == first.Stream {
			full = s
			break
		}
	}
	fmt.Printf("\n%d of %d runs diverged; minimizing first failure (%s on %s)...\n",
		len(divergent), ran, first.Config, first.Stream)
	if full != nil {
		fails := func(ops []verify.Op) bool {
			d, err := verify.CheckConfig(first.Config, &verify.Stream{Name: "cand", Ops: ops}, opt)
			return err == nil && d != nil
		}
		min := verify.Minimize(full, fails, 500)
		d, _ := verify.CheckConfig(first.Config, min, opt)
		fmt.Printf("repro (%d ops, config %s):\n%s", len(min.Ops), first.Config, verify.FormatOps(min.Ops))
		if d != nil {
			fmt.Printf("fails with: %v\n", d)
		}
	}
	os.Exit(1)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.ToUpper(strings.TrimSpace(part)); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// compresses reports whether the config's bus behaviour depends on the
// selected compression scheme.
func compresses(config string) bool {
	for _, c := range sim.CompressorConfigs() {
		if config == c {
			return true
		}
	}
	return false
}

// schemeArg parses the -compressor list; scheme names are lower-case,
// unlike the upper-case config names.
func schemeArg(s string) []string {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return compress.Schemes()
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.ToLower(strings.TrimSpace(part)); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func workloadList(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	if strings.EqualFold(s, "all") {
		var out []string
		for _, bm := range workload.All() {
			out = append(out, bm.Name)
		}
		return out
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
