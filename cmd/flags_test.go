// Flag-validation tests: bad invocations must exit 2 (the conventional
// bad-usage status) with a message that names the offending flag and the
// usage text, and must not fall through to a simulation run.
package cmd

import (
	"os/exec"
	"strings"
	"testing"
)

// runExpectUsage executes the binary expecting exit status 2 and returns
// the combined output.
func runExpectUsage(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%s: expected usage error, got err=%v\n%s", strings.Join(args, " "), err, out)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("%s: exit %d, want 2\n%s", strings.Join(args, " "), code, out)
	}
	return string(out)
}

func TestCppsimFlagValidation(t *testing.T) {
	bin := build(t, "cppsim")
	cases := []struct {
		name    string
		args    []string
		needles []string
	}{
		{"trace-cap without trace-out",
			[]string{"-workload", "treeadd", "-trace-cap", "1024"},
			[]string{"-trace-cap", "-trace-out"}},
		{"metrics-out without interval",
			[]string{"-workload", "treeadd", "-metrics-out", "m.csv"},
			[]string{"-metrics-out", "-interval"}},
		{"interval without metrics-out",
			[]string{"-workload", "treeadd", "-interval", "1000"},
			[]string{"-interval", "-metrics-out"}},
		{"conflicting workload and bench",
			[]string{"-workload", "treeadd", "-bench", "mst"},
			[]string{"-workload", "-bench", "disagree"}},
		{"attr-top without attr-out",
			[]string{"-workload", "treeadd", "-attr-top", "5"},
			[]string{"-attr-top", "-attr-out"}},
		{"non-positive attr-top",
			[]string{"-workload", "treeadd", "-attr-out", "a.txt", "-attr-top", "0"},
			[]string{"-attr-top", "positive"}},
		{"unknown workload",
			[]string{"-workload", "no-such-benchmark"},
			[]string{"no-such-benchmark", "-list"}},
		{"unknown config",
			[]string{"-workload", "treeadd", "-config", "ZZZ"},
			[]string{"ZZZ"}},
		{"hist in functional mode",
			[]string{"-workload", "treeadd", "-functional", "-hist"},
			[]string{"-hist", "-functional"}},
		{"unknown compressor",
			[]string{"-workload", "treeadd", "-config", "BCC", "-compressor", "zzz"},
			[]string{"zzz", "paper", "cpack", "fpc", "bdi"}},
		{"compressor on non-compressing config",
			[]string{"-workload", "treeadd", "-config", "CPP", "-compressor", "fpc"},
			[]string{"CPP", "fpc"}},
		{"compressor on baseline config",
			[]string{"-workload", "treeadd", "-config", "BC", "-compressor", "bdi"},
			[]string{"BC", "bdi", "BCC"}},
		{"stray positional args",
			[]string{"-workload", "treeadd", "stray"},
			[]string{"unexpected arguments"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out := runExpectUsage(t, bin, c.args...)
			for _, n := range c.needles {
				if !strings.Contains(out, n) {
					t.Errorf("output missing %q:\n%s", n, out)
				}
			}
			if !strings.Contains(out, "Usage") {
				t.Errorf("usage text not printed:\n%s", out)
			}
			if strings.Contains(out, "benchmark ") {
				t.Errorf("simulation ran despite bad flags:\n%s", out)
			}
		})
	}

	// -workload and -bench agreeing is NOT an error.
	out := run(t, bin, "-workload", "olden.treeadd", "-bench", "olden.treeadd",
		"-config", "CPP", "-scale", "1", "-functional")
	expect(t, out, "olden.treeadd")

	// A valid zoo scheme on a compressing config runs and self-labels;
	// the explicit default stays silent (byte-identical default output).
	out = run(t, bin, "-workload", "olden.treeadd", "-config", "BCC",
		"-compressor", "fpc", "-scale", "1", "-functional")
	expect(t, out, "compressor       fpc")
	out = run(t, bin, "-workload", "olden.treeadd", "-config", "BCC",
		"-compressor", "paper", "-scale", "1", "-functional")
	if strings.Contains(out, "compressor ") {
		t.Errorf("default scheme printed a compressor line:\n%s", out)
	}
}

func TestCppservedFlagValidation(t *testing.T) {
	bin := build(t, "cppserved")
	out := runExpectUsage(t, bin, "stray")
	if !strings.Contains(out, "unexpected arguments") {
		t.Errorf("output missing stray-args message:\n%s", out)
	}
}

func TestCppledgerFlagValidation(t *testing.T) {
	bin := build(t, "cppledger")
	cases := []struct {
		name    string
		args    []string
		needles []string
	}{
		{"missing ledger", nil, []string{"-ledger", "required"}},
		{"stray args", []string{"-ledger", "x.ledger", "stray"}, []string{"unexpected arguments"}},
		{"unknown dimension", []string{"-ledger", "x.ledger", "-by", "flavour"},
			[]string{"flavour", "workload"}},
		{"window with since", []string{"-ledger", "x.ledger", "-window", "1h",
			"-since", "2026-01-01T00:00:00Z"}, []string{"-window", "-since"}},
		{"bad since", []string{"-ledger", "x.ledger", "-since", "yesterday"},
			[]string{"-since", "yesterday"}},
		{"negative tol", []string{"-ledger", "x.ledger", "-tol", "-0.5"},
			[]string{"-tol"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out := runExpectUsage(t, bin, c.args...)
			for _, n := range c.needles {
				if !strings.Contains(out, n) {
					t.Errorf("output missing %q:\n%s", n, out)
				}
			}
		})
	}

	// A missing ledger file is not an error (same as the server booting
	// fresh): zero runs, zero groups.
	out := run(t, bin, "-ledger", "does-not-exist.ledger")
	expect(t, out, "0 runs")
}
