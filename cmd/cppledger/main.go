// Command cppledger replays a cppserved run ledger offline: the same
// crash-tolerant reader the server uses at boot, feeding the same rollup
// engine that backs /fleet, with no server required.
//
// Usage:
//
//	cppledger -ledger runs.ledger
//	cppledger -ledger runs.ledger -by workload,config -state done -json
//	cppledger -ledger a.ledger -diff b.ledger -tol 0.05
//
// The first form prints the fleet rollup as a table (one row per
// workload x config x compressor x state cell); -by collapses onto the
// named dimensions and -workload/-config/-compressor/-state/-since/
// -until/-window filter exactly like the /fleet query parameters. -json
// emits the same aggregate JSON the server serves.
//
// -diff replays a second ledger and reports per-group drift (run counts,
// panic counts, traffic per kilo-instruction, execute/queue latency)
// beyond -tol. Exit status: 0 when the fleets agree within tolerance, 3
// when drift was found, 1 on read errors, 2 on bad usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"cppcache/internal/ledger"
)

func main() {
	var (
		path       = flag.String("ledger", "", "ledger file to replay (required)")
		diffPath   = flag.String("diff", "", "second ledger to diff against -ledger")
		tol        = flag.Float64("tol", 0.10, "relative drift tolerance for -diff")
		by         = flag.String("by", "", "comma-separated grouping dimensions (default: all)")
		workload   = flag.String("workload", "", "filter: workload")
		config     = flag.String("config", "", "filter: cache configuration")
		compressor = flag.String("compressor", "", "filter: compression scheme")
		state      = flag.String("state", "", "filter: terminal state (done, failed, canceled)")
		since      = flag.String("since", "", "filter: records finished at or after this RFC3339 time")
		until      = flag.String("until", "", "filter: records finished before this RFC3339 time")
		window     = flag.String("window", "", "filter: relative window ending now (e.g. 24h; exclusive with -since/-until)")
		jsonOut    = flag.Bool("json", false, "emit the aggregate (or drift list) as JSON")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "cppledger: -ledger is required")
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "cppledger: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}
	if *tol < 0 {
		fmt.Fprintln(os.Stderr, "cppledger: -tol must be non-negative")
		flag.Usage()
		os.Exit(2)
	}

	f, err := buildFilter(*workload, *config, *compressor, *state, *since, *until, *window)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cppledger:", err)
		flag.Usage()
		os.Exit(2)
	}
	var dims []string
	if *by != "" {
		for _, d := range strings.Split(*by, ",") {
			d = strings.TrimSpace(d)
			if !ledger.KnownDimension(d) {
				fmt.Fprintf(os.Stderr, "cppledger: unknown dimension %q (known: %s)\n",
					d, strings.Join(ledger.Dimensions, ", "))
				os.Exit(2)
			}
			dims = append(dims, d)
		}
	}

	agg, stats, err := replayAggregate(*path, f, dims)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cppledger:", err)
		os.Exit(1)
	}

	if *diffPath != "" {
		aggB, statsB, err := replayAggregate(*diffPath, f, dims)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppledger:", err)
			os.Exit(1)
		}
		drifts := ledger.DiffAggregates(agg, aggB, *tol)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			enc.Encode(drifts)
		} else {
			fmt.Printf("%s: %d runs (%d skipped)\n%s: %d runs (%d skipped)\n",
				*path, agg.TotalRuns, stats.Skipped, *diffPath, aggB.TotalRuns, statsB.Skipped)
			if len(drifts) == 0 {
				fmt.Printf("no drift beyond %.0f%% tolerance\n", *tol*100)
			}
			tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			for _, d := range drifts {
				fmt.Fprintf(tw, "%s\t%s\t%g\t%g\t%+.1f%%\n", d.Group, d.Metric, d.A, d.B, d.Rel*100)
			}
			tw.Flush()
		}
		if len(drifts) > 0 {
			os.Exit(3)
		}
		return
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(agg)
		return
	}
	printAggregate(agg, stats)
}

// buildFilter assembles a ledger.Filter from the flag values, mirroring
// the /fleet query parameter semantics.
func buildFilter(workload, config, compressor, state, since, until, window string) (ledger.Filter, error) {
	f := ledger.Filter{Workload: workload, Config: config, Compressor: compressor, State: state}
	if since != "" {
		t, err := time.Parse(time.RFC3339, since)
		if err != nil {
			return f, fmt.Errorf("bad -since %q: %v", since, err)
		}
		f.Since = t
	}
	if until != "" {
		t, err := time.Parse(time.RFC3339, until)
		if err != nil {
			return f, fmt.Errorf("bad -until %q: %v", until, err)
		}
		f.Until = t
	}
	if window != "" {
		if !f.Since.IsZero() || !f.Until.IsZero() {
			return f, fmt.Errorf("-window is exclusive with -since/-until")
		}
		d, err := time.ParseDuration(window)
		if err != nil || d <= 0 {
			return f, fmt.Errorf("bad -window %q (want a positive Go duration like 24h)", window)
		}
		f.Since = time.Now().Add(-d)
	}
	return f, nil
}

// replayAggregate replays one ledger file into a fresh rollup and
// aggregates it.
func replayAggregate(path string, f ledger.Filter, dims []string) (*ledger.Aggregate, ledger.ReplayStats, error) {
	recs, stats, err := ledger.Replay(path)
	if err != nil {
		return nil, stats, fmt.Errorf("%s: %v", path, err)
	}
	ro := ledger.NewRollup()
	ro.AddAll(recs)
	agg, err := ro.Aggregate(f, dims...)
	if err != nil {
		return nil, stats, err
	}
	return agg, stats, nil
}

// printAggregate renders the rollup as a table: one row per group, the
// latency columns from the execute stage.
func printAggregate(agg *ledger.Aggregate, stats ledger.ReplayStats) {
	fmt.Printf("%d runs in %d groups (by %s)", agg.TotalRuns, len(agg.Groups),
		strings.Join(agg.Dimensions, ","))
	if stats.Skipped > 0 {
		fmt.Printf("; %d damaged records skipped", stats.Skipped)
	}
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	headers := append([]string{}, agg.Dimensions...)
	headers = append(headers, "runs", "memo", "panics", "p50 exec", "p95 exec", "p99 exec", "traffic/kinst", "specs")
	fmt.Fprintln(tw, strings.ToUpper(strings.Join(headers, "\t")))
	for _, g := range agg.Groups {
		row := make([]string, 0, len(headers))
		for _, d := range agg.Dimensions {
			switch d {
			case "workload":
				row = append(row, g.Workload)
			case "config":
				row = append(row, g.Config)
			case "compressor":
				row = append(row, g.Compressor)
			case "state":
				row = append(row, g.State)
			}
		}
		p50, p95, p99 := "-", "-", "-"
		if ex, ok := g.Stages["execute"]; ok {
			p50 = fmtSecs(ex.P50)
			p95 = fmtSecs(ex.P95)
			p99 = fmtSecs(ex.P99)
		}
		traffic := "-"
		if g.TrafficPerKiloInst != nil {
			traffic = fmt.Sprintf("%.1f", g.TrafficPerKiloInst.Mean)
		}
		row = append(row, fmt.Sprint(g.Runs), fmt.Sprint(g.Memoized), fmt.Sprint(g.Panics),
			p50, p95, p99, traffic, fmt.Sprint(g.SpecHashes))
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()

	// Exemplars: one drill-down trace per group, so a fleet anomaly in the
	// table leads to a concrete GET /runs/{id}/trace.
	var exRows []string
	for _, g := range agg.Groups {
		for _, st := range g.Stages {
			for _, b := range st.Buckets {
				if b.ExemplarTrace != "" {
					exRows = append(exRows, fmt.Sprintf("  %s -> run %d trace %s",
						groupName(g), b.ExemplarRun, b.ExemplarTrace))
					break
				}
			}
			break
		}
	}
	if len(exRows) > 0 {
		sort.Strings(exRows)
		fmt.Println("exemplars:")
		for _, r := range exRows {
			fmt.Println(r)
		}
	}
}

// groupName joins a group's non-empty dimension values.
func groupName(g *ledger.Group) string {
	parts := []string{}
	for _, v := range []string{g.Workload, g.Config, g.Compressor, g.State} {
		if v != "" {
			parts = append(parts, v)
		}
	}
	if len(parts) == 0 {
		return "(all)"
	}
	return strings.Join(parts, "/")
}

// fmtSecs renders a stage latency with a sensible unit.
func fmtSecs(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 0.001:
		return fmt.Sprintf("%.1fms", s*1000)
	default:
		return fmt.Sprintf("%.0fus", s*1e6)
	}
}
