// Command cppserved is the simulation observatory: a long-running HTTP
// service that launches simulator runs as jobs and serves their telemetry
// while they execute.
//
// Usage:
//
//	cppserved -addr :8077
//
// then:
//
//	curl -d '{"workload":"mst","config":"CPP","functional":true}' localhost:8077/runs
//	curl localhost:8077/runs/1
//	curl -N localhost:8077/runs/1/stream
//	curl localhost:8077/metrics
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, no new
// runs are accepted, queued jobs are canceled, and running jobs drain
// cooperatively (up to -drain-timeout; stragglers are force-canceled
// through their run contexts near the end of the window).
//
// Supervision knobs: -max-runs bounds concurrent simulations, -max-queue
// the admission wait queue (beyond it POST /runs gets 429), -retain the
// kept terminal runs, and -snap-ring the per-run snapshot history.
// Per-run deadlines come from the RunSpec "timeout_sec" field. -chaos
// enables the seeded fault-injection API (RunSpec "chaos" field) for
// resilience drills.
//
// -ledger enables the durable run ledger: every terminal run is appended
// (fsync'd) to the given file, and on boot the file is replayed —
// tolerating a torn tail from a crash mid-append — to seed the /fleet
// rollup, so fleet history survives restarts. Without -ledger the rollup
// is in-memory only. The listener comes up before the replay and /readyz
// answers 503 until it completes, so health checks see the boot phase
// without the process looking dead.
//
// -memo N enables spec-hash memoization: up to N terminal results are
// kept in an LRU store and identical re-submitted specs are answered
// instantly from it (POST /runs?nocache=1 bypasses it per-run). Off by
// default — every run executes unless asked otherwise.
//
// Sweep fabric roles: -workers URL,URL,... makes this process a
// coordinator that executes POST /sweeps children on those worker
// cppserved instances with consistent-hash placement and
// retry-on-worker-loss; -worker just labels the process as a tier member
// in cppserved_build_info. Without either, sweeps execute on the local
// pool.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cppcache/internal/fabric"
	"cppcache/internal/ledger"
	"cppcache/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8077", "listen address (use :0 for an ephemeral port)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using :0)")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for running jobs")
		logJSON      = flag.Bool("log-json", false, "emit JSON logs instead of text")
		maxRuns      = flag.Int("max-runs", serve.DefaultMaxRunning, "max concurrently executing simulations")
		maxQueue     = flag.Int("max-queue", serve.DefaultMaxQueue, "max queued runs before POST /runs gets 429")
		retain       = flag.Int("retain", serve.DefaultRetain, "max terminal runs kept before eviction")
		snapRing     = flag.Int("snap-ring", serve.DefaultSnapRing, "max interval snapshots retained per run")
		allowChaos   = flag.Bool("chaos", false, "accept seeded fault-injection specs (RunSpec \"chaos\" field)")
		ledgerPath   = flag.String("ledger", "", "append-only run ledger file (replayed on boot; empty disables persistence)")
		memoEntries  = flag.Int("memo", 0, "spec-hash memo store size (0 disables memoization)")
		workerRole   = flag.Bool("worker", false, "label this process as a sweep-fabric worker in build info")
		workerURLs   = flag.String("workers", "", "comma-separated worker cppserved URLs; makes this process a sweep coordinator")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "cppserved: unexpected arguments")
		flag.Usage()
		os.Exit(2)
	}

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	var ledgerWriter *ledger.Writer
	if *ledgerPath != "" {
		var err error
		ledgerWriter, err = ledger.OpenWriter(*ledgerPath)
		if err != nil {
			log.Error("ledger open", "path", *ledgerPath, "err", err)
			os.Exit(1)
		}
		defer ledgerWriter.Close()
	}

	var (
		fab  *fabric.Coordinator
		role string
	)
	if *workerURLs != "" {
		var err error
		fab, err = fabric.New(fabric.Config{
			Workers: strings.Split(*workerURLs, ","),
			Log:     log,
		})
		if err != nil {
			log.Error("fabric", "workers", *workerURLs, "err", err)
			os.Exit(1)
		}
		defer fab.Close()
		log.Info("sweep fabric coordinator", "workers", fab.WorkerCount())
	} else if *workerRole {
		role = "worker"
	}

	reg := serve.NewRegistryWith(serve.Config{
		MaxRunning:  *maxRuns,
		MaxQueue:    *maxQueue,
		Retain:      *retain,
		SnapRing:    *snapRing,
		AllowChaos:  *allowChaos,
		Ledger:      ledgerWriter,
		MemoEntries: *memoEntries,
		Fabric:      fab,
		Role:        role,
	}, log)
	if *ledgerPath != "" {
		// The listener comes up before the boot replay; /readyz answers 503
		// until SeedFleet completes so probes and the fabric route around
		// the booting process instead of declaring it dead.
		reg.SetReady(false)
	}
	srv := &http.Server{
		Handler: serve.NewServer(reg, log),
		// Slow-loris hardening: bound header and body read times and idle
		// keep-alives. No WriteTimeout — SSE responses are long-lived by
		// design; the stream handler enforces its own per-write deadlines.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen", "addr", *addr, "err", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	log.Info("listening", "addr", bound, "url", "http://"+bound)
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Error("write addr-file", "err", err)
			os.Exit(1)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	// Boot replay, after the listener is already answering: /healthz says
	// live, /readyz says 503 booting. The replay tolerates a torn tail; a
	// run racing it to completion is vanishingly unlikely (replay is
	// milliseconds, simulations are not) and at worst double-counts that
	// one record in the in-memory rollup until restart.
	if *ledgerPath != "" {
		recs, stats, err := ledger.Replay(*ledgerPath)
		if err != nil {
			log.Error("ledger replay", "path", *ledgerPath, "err", err)
			os.Exit(1)
		}
		if stats.Skipped > 0 {
			log.Warn("ledger replay skipped damaged records", "path", *ledgerPath,
				"skipped", stats.Skipped, "kept", len(recs))
		}
		reg.SeedFleet(recs)
		reg.SetReady(true)
		log.Info("ledger replayed; ready", "path", *ledgerPath, "replayed_records", len(recs))
	}

	select {
	case <-ctx.Done():
		log.Info("shutting down", "drain_timeout", *drainTimeout)
	case err := <-errc:
		log.Error("serve", "err", err)
		os.Exit(1)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("http shutdown", "err", err)
	}
	if !reg.Drain(*drainTimeout) {
		log.Warn("drain timed out; exiting with jobs still running")
		os.Exit(1)
	}
	log.Info("drained; bye")
}
