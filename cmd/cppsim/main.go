// Command cppsim runs one benchmark on one cache configuration and prints
// the result.
//
// Usage:
//
//	cppsim -bench olden.health -config CPP [-scale 4] [-halved] [-functional]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cppcache"
)

func main() {
	var (
		bench      = flag.String("bench", "olden.health", "benchmark name (see -list)")
		config     = flag.String("config", "CPP", "cache configuration: BC, BCC, HAC, BCP or CPP")
		scale      = flag.Int("scale", 0, "workload scale (0 = default)")
		halved     = flag.Bool("halved", false, "halve the miss penalties (Figure 14 methodology)")
		functional = flag.Bool("functional", false, "skip the pipeline model (faster; no cycle counts)")
		list       = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, info := range cppcache.BenchmarkInfos() {
			fmt.Printf("%-22s %-9s %s\n", info.Name, info.Suite, info.Description)
		}
		return
	}

	res, err := cppcache.Run(*bench, cppcache.CacheConfig(strings.ToUpper(*config)), cppcache.Options{
		Scale:            *scale,
		HalveMissPenalty: *halved,
		FunctionalOnly:   *functional,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cppsim:", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark        %s\n", res.Benchmark)
	fmt.Printf("configuration    %s\n", res.Config)
	if !*functional {
		fmt.Printf("cycles           %d\n", res.Cycles)
		fmt.Printf("instructions     %d\n", res.Instructions)
		fmt.Printf("IPC              %.3f\n", res.IPC)
	}
	fmt.Printf("L1 accesses      %d\n", res.L1Accesses)
	fmt.Printf("L1 misses        %d (%.2f%%)\n", res.L1Misses, 100*res.L1MissRate())
	fmt.Printf("L2 accesses      %d\n", res.L2Accesses)
	fmt.Printf("L2 misses        %d (%.2f%%)\n", res.L2Misses, 100*res.L2MissRate())
	fmt.Printf("memory traffic   %.1f words\n", res.MemTrafficWords)
	if res.Config == cppcache.CPP {
		fmt.Printf("affiliated hits  L1=%d L2=%d\n", res.AffiliatedHitsL1, res.AffiliatedHitsL2)
		fmt.Printf("promotions       %d\n", res.Promotions)
		fmt.Printf("words prefetched %d\n", res.AffWordsPrefetched)
	}
	if res.Config == cppcache.BCP {
		fmt.Printf("buffer hits      L1=%d L2=%d\n", res.PrefetchBufferHitsL1, res.PrefetchBufferHitsL2)
	}
	if !*functional {
		fmt.Printf("mispredicts      %d\n", res.Mispredicts)
		fmt.Printf("ready queue/miss %.2f\n", res.AvgReadyQueueInMiss)
	}
}
