// Command cppsim runs one benchmark on one cache configuration and prints
// the result.
//
// Usage:
//
//	cppsim -workload olden.health -config CPP [-scale 4] [-halved] [-functional]
//	cppsim -workload mst -config BCC -compressor fpc
//
// Workload names may be abbreviated to any unambiguous suffix: "mst"
// resolves to "olden.mst". -compressor selects the line-compression
// scheme for the configurations that compress bus transfers (BCC, LCC);
// selecting one anywhere else is a usage error. Observability flags stream interval metrics and
// an event trace to files:
//
//	cppsim -workload mst -config cpp -metrics-out m.csv -trace-out t.json -interval 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cppcache"
)

// usageError prints the message followed by flag usage and exits 2, the
// conventional bad-invocation status.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cppsim: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	var (
		workloadFlag = flag.String("workload", "", "workload name or unambiguous suffix (see -list)")
		bench        = flag.String("bench", "", "alias for -workload (kept for compatibility)")
		config       = flag.String("config", "CPP", "cache configuration: BC, BCC, HAC, BCP, CPP, VC or LCC")
		compressor   = flag.String("compressor", "", "line-compression scheme for BCC/LCC: paper (default), cpack, fpc or bdi")
		scale        = flag.Int("scale", 0, "workload scale (0 = default)")
		halved       = flag.Bool("halved", false, "halve the miss penalties (Figure 14 methodology)")
		functional   = flag.Bool("functional", false, "skip the pipeline model (faster; no cycle counts)")
		list         = flag.Bool("list", false, "list benchmarks and exit")

		metricsOut = flag.String("metrics-out", "", "write interval metrics CSV to this file (requires -interval)")
		traceOut   = flag.String("trace-out", "", "write Chrome trace_event JSON to this file")
		interval   = flag.Int64("interval", 0, "metrics snapshot cadence in cycles (ops when -functional)")
		traceCap   = flag.Int("trace-cap", 0, "event-ring capacity (0 = 65536; requires -trace-out)")
		hist       = flag.Bool("hist", false, "print latency histograms (pipeline mode only)")
		attrOut    = flag.String("attr-out", "", "write the PC/region attribution profile (top-N tables + collapsed stacks) to this file")
		attrTop    = flag.Int("attr-top", 10, "rows per attribution top-N table (requires -attr-out)")
	)
	flag.Parse()

	if *list {
		for _, info := range cppcache.BenchmarkInfos() {
			fmt.Printf("%-22s %-9s %s\n", info.Name, info.Suite, info.Description)
		}
		return
	}

	if flag.NArg() > 0 {
		usageError("unexpected arguments: %s", strings.Join(flag.Args(), " "))
	}
	if *workloadFlag != "" && *bench != "" && *workloadFlag != *bench {
		usageError("-workload %q and -bench %q disagree; use one", *workloadFlag, *bench)
	}
	name := *workloadFlag
	if name == "" {
		name = *bench
	}
	if name == "" {
		name = "olden.health"
	}
	resolved, err := cppcache.ResolveBenchmark(name)
	if err != nil {
		usageError("%v (run -list for the full set)", err)
	}

	cfg, ok := cppcache.KnownConfig(*config)
	if !ok {
		usageError("unknown configuration %q (known: BC, BCC, HAC, BCP, CPP, VC, LCC)", *config)
	}
	scheme := *compressor
	if scheme != "" {
		canonical, ok := cppcache.KnownCompressor(scheme)
		if !ok {
			usageError("unknown compressor %q (known: %s)", scheme, strings.Join(cppcache.Compressors(), ", "))
		}
		if err := cppcache.ValidateCompressor(cfg, canonical); err != nil {
			usageError("%v", err)
		}
		scheme = canonical
	}

	if *metricsOut != "" && *interval <= 0 {
		usageError("-metrics-out requires -interval > 0 (the snapshot cadence)")
	}
	if *interval < 0 {
		usageError("-interval must be positive (got %d)", *interval)
	}
	if *interval > 0 && *metricsOut == "" {
		usageError("-interval without -metrics-out would collect metrics nobody reads; add -metrics-out FILE")
	}
	if *traceCap != 0 && *traceOut == "" {
		usageError("-trace-cap requires -trace-out")
	}
	if *traceCap < 0 {
		usageError("-trace-cap must be positive (got %d)", *traceCap)
	}
	if *hist && *functional {
		usageError("-hist needs the pipeline model; drop -functional")
	}
	if *attrTop != 10 && *attrOut == "" {
		usageError("-attr-top requires -attr-out")
	}
	if *attrTop <= 0 {
		usageError("-attr-top must be positive (got %d)", *attrTop)
	}

	opts := cppcache.Options{
		Scale:            *scale,
		HalveMissPenalty: *halved,
		FunctionalOnly:   *functional,
		Compressor:       scheme,
	}
	observing := *metricsOut != "" || *traceOut != "" || *hist || *attrOut != ""

	var res cppcache.Result
	var ob *cppcache.Observation
	if observing {
		res, ob, err = cppcache.RunObserved(resolved, cfg, opts, cppcache.ObserveOptions{
			IntervalCycles: *interval,
			Trace:          *traceOut != "",
			TraceCap:       *traceCap,
			Attr:           *attrOut != "",
		})
	} else {
		res, err = cppcache.Run(resolved, cfg, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cppsim:", err)
		os.Exit(1)
	}

	fmt.Printf("benchmark        %s\n", res.Benchmark)
	fmt.Printf("configuration    %s\n", res.Config)
	if res.Compressor != cppcache.DefaultCompressor() {
		// Only non-default schemes earn a line: default output stays
		// byte-identical to the pre-zoo simulator.
		fmt.Printf("compressor       %s\n", res.Compressor)
	}
	if !*functional {
		fmt.Printf("cycles           %d\n", res.Cycles)
		fmt.Printf("instructions     %d\n", res.Instructions)
		fmt.Printf("IPC              %.3f\n", res.IPC)
	}
	fmt.Printf("L1 accesses      %d\n", res.L1Accesses)
	fmt.Printf("L1 misses        %d (%.2f%%)\n", res.L1Misses, 100*res.L1MissRate())
	fmt.Printf("L2 accesses      %d\n", res.L2Accesses)
	fmt.Printf("L2 misses        %d (%.2f%%)\n", res.L2Misses, 100*res.L2MissRate())
	fmt.Printf("memory traffic   %.1f words\n", res.MemTrafficWords)
	if res.Config == cppcache.CPP {
		fmt.Printf("affiliated hits  L1=%d L2=%d\n", res.AffiliatedHitsL1, res.AffiliatedHitsL2)
		fmt.Printf("promotions       %d\n", res.Promotions)
		fmt.Printf("words prefetched %d\n", res.AffWordsPrefetched)
	}
	if res.Config == cppcache.BCP {
		fmt.Printf("buffer hits      L1=%d L2=%d\n", res.PrefetchBufferHitsL1, res.PrefetchBufferHitsL2)
	}
	if !*functional {
		fmt.Printf("mispredicts      %d\n", res.Mispredicts)
		fmt.Printf("ready queue/miss %.2f\n", res.AvgReadyQueueInMiss)
	}

	if ob != nil {
		if *metricsOut != "" {
			csv := ob.MetricsCSV()
			if d := ob.TraceDropped(); d > 0 {
				// Trailing comment so a truncated event trace is visible to
				// anyone reading the metrics file, not only the trace JSON.
				csv += fmt.Sprintf("# trace_dropped %d\n", d)
			}
			if err := os.WriteFile(*metricsOut, []byte(csv), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "cppsim: write metrics:", err)
				os.Exit(1)
			}
			fmt.Printf("metrics          %s (%d intervals of %d)\n", *metricsOut, ob.Intervals(), *interval)
		}
		if *traceOut != "" {
			if err := os.WriteFile(*traceOut, ob.ChromeTrace(), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "cppsim: write trace:", err)
				os.Exit(1)
			}
			fmt.Printf("trace            %s (%d events dropped)\n", *traceOut, ob.TraceDropped())
		}
		if *attrOut != "" {
			profile := ob.AttrText(*attrTop) + "\ncollapsed stacks:\n" + ob.AttrCollapsed()
			if err := os.WriteFile(*attrOut, []byte(profile), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "cppsim: write attribution profile:", err)
				os.Exit(1)
			}
			fmt.Printf("attribution      %s\n", *attrOut)
		}
		if *hist {
			fmt.Print(ob.HistogramsText())
		}
		if d := ob.TraceDropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "cppsim: warning: event ring overflowed, %d oldest events dropped (raise -trace-cap)\n", d)
		}
	}
}
