// Smoke tests: build every CLI and run it once with tiny inputs, asserting
// a zero exit status and recognizably-shaped output. These catch wiring
// breakage (flag renames, output format drift, a main that panics) that
// package-level unit tests cannot see.
package cmd

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// build compiles ./cmd/<name> into t.TempDir and returns the binary path.
func build(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./%s: %v\n%s", name, err, out)
	}
	return bin
}

// run executes the binary and returns its combined output, failing the test
// on a non-zero exit.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// expect asserts that every needle appears in the output.
func expect(t *testing.T, out string, needles ...string) {
	t.Helper()
	for _, n := range needles {
		if !strings.Contains(out, n) {
			t.Errorf("output missing %q:\n%s", n, out)
		}
	}
}

func TestSmokeCppsim(t *testing.T) {
	bin := build(t, "cppsim")
	out := run(t, bin, "-bench", "olden.treeadd", "-config", "CPP", "-scale", "1")
	expect(t, out, "benchmark", "olden.treeadd", "configuration", "CPP",
		"L1 accesses", "memory traffic", "affiliated hits")
	out = run(t, bin, "-list")
	expect(t, out, "olden.treeadd", "olden.health")
	out = run(t, bin, "-bench", "olden.mst", "-config", "BC", "-scale", "1", "-functional")
	expect(t, out, "configuration    BC")
	if strings.Contains(out, "cycles") {
		t.Errorf("-functional run printed cycle counts:\n%s", out)
	}
}

func TestSmokeCppbench(t *testing.T) {
	bin := build(t, "cppbench")
	// Figure 3 is trace-only (no simulation), so the full 14-benchmark
	// sweep stays cheap even in a smoke test.
	out := run(t, bin, "-fig", "3", "-scale", "1")
	expect(t, out, "Figure 3", "olden.treeadd")
	out = run(t, bin, "-fig", "3", "-scale", "1", "-csv")
	if !strings.Contains(out, ",") {
		t.Errorf("-csv output has no commas:\n%s", out)
	}
}

func TestSmokeCppstudy(t *testing.T) {
	bin := build(t, "cppstudy")
	out := run(t, bin, "-scale", "1")
	expect(t, out, "Figure 3", "average compressible")
}

func TestSmokeCppverify(t *testing.T) {
	bin := build(t, "cppverify")
	out := run(t, bin, "-seeds", "3", "-ops", "800")
	expect(t, out, "PASS", "15 runs clean", "oracle-value")
	out = run(t, bin, "-seeds", "1", "-ops", "500", "-configs", "CPP", "-workloads", "olden.treeadd", "-v")
	expect(t, out, "ok   CPP", "olden.treeadd", "2 runs clean")
}
