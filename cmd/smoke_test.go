// Smoke tests: build every CLI and run it once with tiny inputs, asserting
// a zero exit status and recognizably-shaped output. These catch wiring
// breakage (flag renames, output format drift, a main that panics) that
// package-level unit tests cannot see.
package cmd

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// build compiles ./cmd/<name> into t.TempDir and returns the binary path.
func build(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./%s: %v\n%s", name, err, out)
	}
	return bin
}

// run executes the binary and returns its combined output, failing the test
// on a non-zero exit.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// expect asserts that every needle appears in the output.
func expect(t *testing.T, out string, needles ...string) {
	t.Helper()
	for _, n := range needles {
		if !strings.Contains(out, n) {
			t.Errorf("output missing %q:\n%s", n, out)
		}
	}
}

func TestSmokeCppsim(t *testing.T) {
	bin := build(t, "cppsim")
	out := run(t, bin, "-bench", "olden.treeadd", "-config", "CPP", "-scale", "1")
	expect(t, out, "benchmark", "olden.treeadd", "configuration", "CPP",
		"L1 accesses", "memory traffic", "affiliated hits")
	out = run(t, bin, "-list")
	expect(t, out, "olden.treeadd", "olden.health")
	out = run(t, bin, "-bench", "olden.mst", "-config", "BC", "-scale", "1", "-functional")
	expect(t, out, "configuration    BC")
	if strings.Contains(out, "cycles") {
		t.Errorf("-functional run printed cycle counts:\n%s", out)
	}
}

func TestSmokeCppbench(t *testing.T) {
	bin := build(t, "cppbench")
	// Figure 3 is trace-only (no simulation), so the full 14-benchmark
	// sweep stays cheap even in a smoke test.
	out := run(t, bin, "-fig", "3", "-scale", "1")
	expect(t, out, "Figure 3", "olden.treeadd")
	out = run(t, bin, "-fig", "3", "-scale", "1", "-csv")
	if !strings.Contains(out, ",") {
		t.Errorf("-csv output has no commas:\n%s", out)
	}
}

func TestSmokeCppstudy(t *testing.T) {
	bin := build(t, "cppstudy")
	out := run(t, bin, "-scale", "1")
	expect(t, out, "Figure 3", "average compressible")
}

func TestSmokeCppverify(t *testing.T) {
	bin := build(t, "cppverify")
	out := run(t, bin, "-seeds", "3", "-ops", "800")
	expect(t, out, "PASS", "24 runs clean", "oracle-value")
	out = run(t, bin, "-seeds", "1", "-ops", "500", "-configs", "CPP", "-workloads", "olden.treeadd", "-v")
	expect(t, out, "ok   CPP", "olden.treeadd", "2 runs clean")
}

// TestSmokeCppserved boots the observatory on an ephemeral port, launches
// one functional run over HTTP, scrapes /metrics, and shuts the server
// down gracefully with SIGTERM.
func TestSmokeCppserved(t *testing.T) {
	bin := build(t, "cppserved")
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-addr-file", addrFile, "-drain-timeout", "30s")
	var logs bytes.Buffer
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the bound address to appear.
	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never wrote its address; logs:\n%s", logs.String())
	}
	base := "http://" + addr

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v\nlogs:\n%s", path, err, logs.String())
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	expect(t, get("/healthz"), "ok")

	resp, err := http.Post(base+"/runs", "application/json",
		strings.NewReader(`{"workload":"treeadd","config":"CPP","functional":true,"scale":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /runs: status %d\n%s", resp.StatusCode, body)
	}

	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		if strings.Contains(get("/runs/1"), `"state": "done"`) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	status := get("/runs/1")
	expect(t, status, `"state": "done"`, `"workload": "olden.treeadd"`)
	expect(t, get("/metrics"),
		"# TYPE cppsim_l1_misses_total counter",
		`cppsim_l1_misses_total{run="1",workload="olden.treeadd",config="CPP",compressor="paper"}`,
		`cppserved_runs{state="done"} 1`)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cppserved exited non-zero after SIGTERM: %v\nlogs:\n%s", err, logs.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("cppserved did not exit after SIGTERM; logs:\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "drained") {
		t.Errorf("graceful shutdown did not drain; logs:\n%s", logs.String())
	}
}
