// Smoke tests: build every CLI and run it once with tiny inputs, asserting
// a zero exit status and recognizably-shaped output. These catch wiring
// breakage (flag renames, output format drift, a main that panics) that
// package-level unit tests cannot see.
package cmd

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// build compiles ./cmd/<name> into t.TempDir and returns the binary path.
func build(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./%s: %v\n%s", name, err, out)
	}
	return bin
}

// run executes the binary and returns its combined output, failing the test
// on a non-zero exit.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// expect asserts that every needle appears in the output.
func expect(t *testing.T, out string, needles ...string) {
	t.Helper()
	for _, n := range needles {
		if !strings.Contains(out, n) {
			t.Errorf("output missing %q:\n%s", n, out)
		}
	}
}

func TestSmokeCppsim(t *testing.T) {
	bin := build(t, "cppsim")
	out := run(t, bin, "-bench", "olden.treeadd", "-config", "CPP", "-scale", "1")
	expect(t, out, "benchmark", "olden.treeadd", "configuration", "CPP",
		"L1 accesses", "memory traffic", "affiliated hits")
	out = run(t, bin, "-list")
	expect(t, out, "olden.treeadd", "olden.health")
	out = run(t, bin, "-bench", "olden.mst", "-config", "BC", "-scale", "1", "-functional")
	expect(t, out, "configuration    BC")
	if strings.Contains(out, "cycles") {
		t.Errorf("-functional run printed cycle counts:\n%s", out)
	}
}

func TestSmokeCppbench(t *testing.T) {
	bin := build(t, "cppbench")
	// Figure 3 is trace-only (no simulation), so the full 14-benchmark
	// sweep stays cheap even in a smoke test.
	out := run(t, bin, "-fig", "3", "-scale", "1")
	expect(t, out, "Figure 3", "olden.treeadd")
	out = run(t, bin, "-fig", "3", "-scale", "1", "-csv")
	if !strings.Contains(out, ",") {
		t.Errorf("-csv output has no commas:\n%s", out)
	}
}

func TestSmokeCppstudy(t *testing.T) {
	bin := build(t, "cppstudy")
	out := run(t, bin, "-scale", "1")
	expect(t, out, "Figure 3", "average compressible")
}

func TestSmokeCppverify(t *testing.T) {
	bin := build(t, "cppverify")
	out := run(t, bin, "-seeds", "3", "-ops", "800")
	expect(t, out, "PASS", "24 runs clean", "oracle-value")
	out = run(t, bin, "-seeds", "1", "-ops", "500", "-configs", "CPP", "-workloads", "olden.treeadd", "-v")
	expect(t, out, "ok   CPP", "olden.treeadd", "2 runs clean")
}

// TestSmokeCppserved boots the observatory on an ephemeral port, launches
// one functional run over HTTP, scrapes /metrics, and shuts the server
// down gracefully with SIGTERM.
func TestSmokeCppserved(t *testing.T) {
	bin := build(t, "cppserved")
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-addr-file", addrFile, "-drain-timeout", "30s")
	var logs bytes.Buffer
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the bound address to appear.
	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = strings.TrimSpace(string(b))
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never wrote its address; logs:\n%s", logs.String())
	}
	base := "http://" + addr

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v\nlogs:\n%s", path, err, logs.String())
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	expect(t, get("/healthz"), "ok")

	resp, err := http.Post(base+"/runs", "application/json",
		strings.NewReader(`{"workload":"treeadd","config":"CPP","functional":true,"scale":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /runs: status %d\n%s", resp.StatusCode, body)
	}

	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		if strings.Contains(get("/runs/1"), `"state": "done"`) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	status := get("/runs/1")
	expect(t, status, `"state": "done"`, `"workload": "olden.treeadd"`)
	expect(t, get("/metrics"),
		"# TYPE cppsim_l1_misses_total counter",
		`cppsim_l1_misses_total{run="1",workload="olden.treeadd",config="CPP",compressor="paper"}`,
		`cppserved_runs{state="done"} 1`)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cppserved exited non-zero after SIGTERM: %v\nlogs:\n%s", err, logs.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("cppserved did not exit after SIGTERM; logs:\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "drained") {
		t.Errorf("graceful shutdown did not drain; logs:\n%s", logs.String())
	}
}

// TestSmokeLedgerDashboard is the full durability drill: boot cppserved
// with a ledger, complete runs, check /fleet and /dashboard, kill the
// server with SIGKILL, simulate a torn mid-append write on the ledger
// tail, then restart on the same file and assert the replay recovered
// every intact record. Finally cppledger replays the ledger offline and
// diffs it against an empty one.
func TestSmokeLedgerDashboard(t *testing.T) {
	bin := build(t, "cppserved")
	ledgerBin := build(t, "cppledger")
	dir := t.TempDir()
	ledgerPath := filepath.Join(dir, "runs.ledger")

	boot := func(addrFile string) (*exec.Cmd, *bytes.Buffer, string) {
		t.Helper()
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-ledger", ledgerPath, "-drain-timeout", "30s")
		var logs bytes.Buffer
		cmd.Stderr = &logs
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		var addr string
		for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
			if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
				addr = strings.TrimSpace(string(b))
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if addr == "" {
			cmd.Process.Kill()
			t.Fatalf("server never wrote its address; logs:\n%s", logs.String())
		}
		return cmd, &logs, "http://" + addr
	}

	get := func(base, path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	cmd, logs, base := boot(filepath.Join(dir, "addr1"))
	defer cmd.Process.Kill()

	for _, spec := range []string{
		`{"workload":"mst","config":"CPP","functional":true,"scale":1}`,
		`{"workload":"treeadd","config":"BCC","compressor":"fpc","functional":true,"scale":1}`,
	} {
		resp, err := http.Post(base+"/runs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /runs: status %d", resp.StatusCode)
		}
	}
	for id := 1; id <= 2; id++ {
		for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
			if strings.Contains(get(base, fmt.Sprintf("/runs/%d", id)), `"state": "done"`) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	expect(t, get(base, "/fleet"), `"total_runs": 2`, `"workload": "olden.mst"`,
		`"compressor": "fpc"`, `"spec_hashes"`)
	expect(t, get(base, "/fleet/workload"), `"dimensions"`, `"olden.treeadd"`)
	expect(t, get(base, "/dashboard"), "<!DOCTYPE html>", "cppcache observatory",
		"/dashboard/stream", "EventSource")
	expect(t, get(base, "/metrics"),
		`cppserved_fleet_runs_total{workload="olden.mst",config="CPP",compressor="paper",state="done"} 1`,
		"cppserved_build_info{")

	// Crash hard (no drain, no clean close) and tear the ledger tail the
	// way a crash mid-append would: a frame whose payload never finished.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	f, err := os.OpenFile(ledgerPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`cppl1 412 deadbeef {"schema":1,"run_id":99,"truncat`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cmd2, logs2, base2 := boot(filepath.Join(dir, "addr2"))
	defer cmd2.Process.Kill()
	expect(t, get(base2, "/fleet"), `"total_runs": 2`, `"workload": "olden.mst"`)
	if !strings.Contains(logs2.String(), "skipped damaged records") {
		t.Errorf("restart logs never mentioned the torn tail:\n%s", logs2.String())
	}
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("cppserved exited non-zero after SIGTERM: %v\nlogs:\n%s", err, logs2.String())
	}
	_ = logs

	// Offline replay: same rollup, no server.
	out := run(t, ledgerBin, "-ledger", ledgerPath)
	expect(t, out, "2 runs in 2 groups", "olden.mst", "olden.treeadd",
		"damaged records skipped", "exemplars:")
	out = run(t, ledgerBin, "-ledger", ledgerPath, "-json", "-by", "workload")
	expect(t, out, `"total_runs": 2`, `"dimensions"`)
	out = run(t, ledgerBin, "-ledger", ledgerPath, "-state", "done", "-json")
	expect(t, out, `"total_runs": 2`)

	// Self-diff agrees; diff against an empty ledger drifts (exit 3).
	out = run(t, ledgerBin, "-ledger", ledgerPath, "-diff", ledgerPath)
	expect(t, out, "no drift")
	empty := filepath.Join(dir, "empty.ledger")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	diffOut, err := exec.Command(ledgerBin, "-ledger", ledgerPath, "-diff", empty).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("diff against empty ledger: err=%v (want exit 3)\n%s", err, diffOut)
	}
	expect(t, string(diffOut), "presence")
}
