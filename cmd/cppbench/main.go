// Command cppbench regenerates every table and figure of the paper's
// evaluation (§4) and prints them, optionally as CSV or restricted to one
// figure. EXPERIMENTS.md records a full run of this tool.
//
// Usage:
//
//	cppbench                 # all figures at the default scale
//	cppbench -fig 10         # only Figure 10
//	cppbench -csv -scale 2   # CSV output, smaller workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cppcache"
)

func main() {
	var (
		scale   = flag.Int("scale", 0, "workload scale (0 = default)")
		fig     = flag.Int("fig", 0, "only this figure (3, 9, 10, 11, 12, 13, 14, 15); 0 = all")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		related = flag.Bool("related", false, "also run the related-work comparison (VC, LCC) and the energy estimate")
	)
	flag.Parse()

	s := cppcache.NewSuite(cppcache.SuiteOptions{Scale: *scale})
	show := func(t *cppcache.Table, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppbench:", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Println("#", t.Title)
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t)
		}
	}

	start := time.Now()
	want := func(n int) bool { return *fig == 0 || *fig == n }

	if want(3) {
		show(s.Figure3())
	}
	if want(9) {
		fmt.Println(cppcache.BaselineDescription())
	}
	if want(10) {
		show(s.Figure10())
	}
	if want(11) {
		show(s.Figure11())
	}
	if want(12) {
		show(s.Figure12())
	}
	if want(13) {
		show(s.Figure13())
	}
	if want(14) {
		show(s.Figure14())
	}
	if want(15) {
		show(s.Figure15())
	}
	if *related {
		show(s.RelatedWorkTime())
		show(s.RelatedWorkTraffic())
		show(s.Energy())
	}
	if *fig == 0 {
		show(s.InstructionMix())
	}
	fmt.Fprintf(os.Stderr, "total time: %s\n", time.Since(start).Round(time.Millisecond))
}
