// Command cppbench regenerates every table and figure of the paper's
// evaluation (§4) and prints them, optionally as CSV or restricted to one
// figure. EXPERIMENTS.md records a full run of this tool.
//
// Usage:
//
//	cppbench                 # all figures at the default scale
//	cppbench -fig 10         # only Figure 10
//	cppbench -csv -scale 2   # CSV output, smaller workloads
//	cppbench -parallel 4     # fan the figure sweeps over 4 workers
//	cppbench -trace-out t.json  # dump a Chrome trace of the run's spans
//
// It is also the simulator-performance harness: -benchjson runs every
// cache configuration over one benchmark and writes machine-readable
// throughput numbers (BENCH_simperf.json in this repo records a run),
// including a predecode section (trace pre-decode cost and replay-path
// speedup) and a parallel section (scheduler scaling probe), and
// -cpuprofile/-memprofile capture pprof profiles of whatever work the
// invocation does.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cppcache"
	"cppcache/internal/sched"
	"cppcache/internal/span"
	"cppcache/internal/trace"
	"cppcache/internal/workload"
)

// perfEntry is one configuration's row in the -benchjson report.
type perfEntry struct {
	Config       string  `json:"config"`
	WallNS       int64   `json:"wall_ns"`
	Insts        int64   `json:"insts"`
	InstsPerSec  float64 `json:"insts_per_sec"`
	Accesses     int64   `json:"accesses"`
	NSPerAccess  float64 `json:"ns_per_access"`
	AllocsPerRun int64   `json:"allocs_per_run"`
	BytesPerRun  int64   `json:"bytes_per_run"`
}

// predecodeReport measures the shared trace pre-decode: how much building
// the struct-of-arrays representation costs, what it weighs, and how much
// faster replaying it is than iterating the generic instruction stream.
type predecodeReport struct {
	Insts            int     `json:"insts"`
	BytesPerInst     float64 `json:"bytes_per_inst"`
	DecodeWallNS     int64   `json:"decode_wall_ns"`
	StreamNSPerInst  float64 `json:"stream_ns_per_inst"`
	DecodedNSPerInst float64 `json:"decoded_ns_per_inst"`
	ReplaySpeedup    float64 `json:"replay_speedup"`
}

// parallelEntry is one worker-count row of the scheduler scaling probe: a
// fixed batch of independent full-pipeline runs fanned over the
// work-stealing scheduler.
type parallelEntry struct {
	Workers     int     `json:"workers"`
	Runs        int     `json:"runs"`
	WallNS      int64   `json:"wall_ns"`
	InstsPerSec float64 `json:"insts_per_sec"`
	SpeedupVs1  float64 `json:"speedup_vs_1"`
}

// parallelReport records the machine's parallelism alongside the scaling
// rows — aggregate throughput is only comparable against baselines pinned
// on the same core count, and a GOMAXPROCS cap below num_cpu changes the
// meaning of the per-worker rows.
type parallelReport struct {
	Cores      int             `json:"cores"` // == num_cpu; kept for older baseline readers
	NumCPU     int             `json:"num_cpu"`
	Gomaxprocs int             `json:"gomaxprocs"`
	Config     string          `json:"config"`
	Batches    []parallelEntry `json:"batches"`
}

// perfReport is the -benchjson output format.
type perfReport struct {
	Benchmark string           `json:"benchmark"`
	Scale     int              `json:"scale"`
	Reps      int              `json:"reps"`
	Configs   []perfEntry      `json:"configs"`
	Predecode *predecodeReport `json:"predecode,omitempty"`
	Parallel  *parallelReport  `json:"parallel,omitempty"`
}

// compareAgainst checks a fresh throughput report against a baseline
// report (the committed BENCH_simperf.json, typically): any configuration
// whose per-run wall time grew by more than tolerance fails. Only
// meaningful on the machine that produced the baseline.
func compareAgainst(rep perfReport, baselinePath string, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base perfReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	byConfig := make(map[string]perfEntry, len(base.Configs))
	for _, e := range base.Configs {
		byConfig[e.Config] = e
	}
	var regressions []string
	for _, e := range rep.Configs {
		b, ok := byConfig[e.Config]
		if !ok || b.WallNS <= 0 {
			continue
		}
		delta := float64(e.WallNS-b.WallNS) / float64(b.WallNS)
		fmt.Fprintf(os.Stderr, "%-4s %8.2f ms/run vs baseline %8.2f ms/run (%+.1f%%)\n",
			e.Config, float64(e.WallNS)/1e6, float64(b.WallNS)/1e6, 100*delta)
		if delta > tolerance {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f%% slower (limit %.1f%%)", e.Config, 100*delta, 100*tolerance))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("throughput regression vs %s: %v", baselinePath, regressions)
	}
	return nil
}

// measurePredecode times the trace pre-decode itself and the two replay
// paths it distinguishes: the generic isa.Stream iteration the simulator
// used to fetch from, and the struct-of-arrays scan the pre-decoded fast
// path fetches from now.
func measurePredecode(bench string, scale int) (*predecodeReport, error) {
	wp, err := workload.BuildShared(bench, scale)
	if err != nil {
		return nil, err
	}
	insts := wp.Insts()
	start := time.Now()
	d := trace.NewDecoded(insts)
	decodeWall := time.Since(start)
	n := d.Len()
	if n == 0 {
		return nil, fmt.Errorf("predecode: %s has an empty trace", bench)
	}
	const iters = 20
	var sink uint64
	start = time.Now()
	for it := 0; it < iters; it++ {
		st := wp.Stream()
		for {
			in, ok := st.Next()
			if !ok {
				break
			}
			sink += uint64(in.Addr) + uint64(in.Op)
		}
	}
	streamWall := time.Since(start)
	ops, addrs := d.Ops(), d.Addrs()
	start = time.Now()
	for it := 0; it < iters; it++ {
		for i := range ops {
			sink += uint64(addrs[i]) + uint64(ops[i])
		}
	}
	decodedWall := time.Since(start)
	if sink == 0 {
		fmt.Fprintln(os.Stderr, "predecode: degenerate trace")
	}
	perStream := float64(streamWall.Nanoseconds()) / float64(iters*n)
	perDecoded := float64(decodedWall.Nanoseconds()) / float64(iters*n)
	rep := &predecodeReport{
		Insts:            n,
		BytesPerInst:     float64(d.Bytes()) / float64(n),
		DecodeWallNS:     decodeWall.Nanoseconds(),
		StreamNSPerInst:  perStream,
		DecodedNSPerInst: perDecoded,
	}
	if perDecoded > 0 {
		rep.ReplaySpeedup = perStream / perDecoded
	}
	return rep, nil
}

// measureParallel fans a fixed batch of independent BC runs over the
// work-stealing scheduler at increasing worker counts and records the
// aggregate throughput of each batch. With a trace attached, every batch
// gets a span and every run a child span carrying its worker index and
// steal count.
func measureParallel(p *cppcache.Program, scale int, tr *span.Span) (*parallelReport, error) {
	cores := runtime.NumCPU()
	counts := []int{1}
	for _, w := range []int{2, cores} {
		if w > counts[len(counts)-1] {
			counts = append(counts, w)
		}
	}
	const runs = 8
	rep := &parallelReport{
		Cores:      cores,
		NumCPU:     cores,
		Gomaxprocs: runtime.GOMAXPROCS(0),
		Config:     string(cppcache.BC),
	}
	var base float64
	for _, w := range counts {
		batch := tr.StartChild(fmt.Sprintf("parallel.w%d", w), span.Int("workers", int64(w)))
		start := time.Now()
		var insts int64
		err := sched.DoTraced(context.Background(), runs, w, batch,
			func(i int) string { return fmt.Sprintf("run %d", i) },
			func(_ context.Context, _, i int) error {
				r, err := cppcache.RunProgram(p, cppcache.BC, cppcache.Options{Scale: scale})
				if err != nil {
					return err
				}
				if i == 0 {
					insts = r.Instructions
				}
				return nil
			})
		batch.End()
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		e := parallelEntry{
			Workers:     w,
			Runs:        runs,
			WallNS:      wall.Nanoseconds(),
			InstsPerSec: float64(insts*runs) / wall.Seconds(),
		}
		if base == 0 {
			base = e.InstsPerSec
		}
		if base > 0 {
			e.SpeedupVs1 = e.InstsPerSec / base
		}
		rep.Batches = append(rep.Batches, e)
		fmt.Fprintf(os.Stderr, "parallel workers=%-2d %8.2f ms/batch  %10.0f insts/s aggregate (%.2fx)\n",
			w, float64(e.WallNS)/1e6, e.InstsPerSec, e.SpeedupVs1)
	}
	return rep, nil
}

// runBenchJSON measures end-to-end simulator throughput per cache
// configuration: wall time, instructions and memory accesses retired, and
// the Go allocator's work per run (the hot-path optimisation target).
func runBenchJSON(path, bench string, scale, reps int, tr *span.Span) (perfReport, error) {
	p, err := cppcache.BuildBenchmark(bench, scale)
	if err != nil {
		return perfReport{}, err
	}
	// One untimed warm run so lazily-built state (program cache, text
	// pages) does not land in the first config's numbers.
	if _, err := cppcache.RunProgram(p, cppcache.BC, cppcache.Options{Scale: scale}); err != nil {
		return perfReport{}, err
	}
	rep := perfReport{Benchmark: bench, Scale: scale, Reps: reps}
	var before, after runtime.MemStats
	for _, cfg := range cppcache.Configs() {
		var res cppcache.Result
		runtime.GC()
		runtime.ReadMemStats(&before)
		cfgSp := tr.StartChild("config."+string(cfg), span.Int("reps", int64(reps)))
		start := time.Now()
		for i := 0; i < reps; i++ {
			res, err = cppcache.RunProgram(p, cfg, cppcache.Options{Scale: scale})
			if err != nil {
				cfgSp.End()
				return perfReport{}, err
			}
		}
		wall := time.Since(start)
		cfgSp.End()
		runtime.ReadMemStats(&after)
		perRun := wall.Nanoseconds() / int64(reps)
		accesses := res.L1Accesses
		e := perfEntry{
			Config:       string(cfg),
			WallNS:       perRun,
			Insts:        res.Instructions,
			InstsPerSec:  float64(res.Instructions) / (float64(perRun) / 1e9),
			Accesses:     accesses,
			AllocsPerRun: int64(after.Mallocs-before.Mallocs) / int64(reps),
			BytesPerRun:  int64(after.TotalAlloc-before.TotalAlloc) / int64(reps),
		}
		if accesses > 0 {
			e.NSPerAccess = float64(perRun) / float64(accesses)
		}
		rep.Configs = append(rep.Configs, e)
		fmt.Fprintf(os.Stderr, "%-4s %8.2f ms/run  %10.0f insts/s  %7d allocs/run\n",
			cfg, float64(perRun)/1e6, e.InstsPerSec, e.AllocsPerRun)
	}
	predecode := tr.StartChild("predecode")
	rep.Predecode, err = measurePredecode(bench, scale)
	predecode.End()
	if err != nil {
		return rep, err
	}
	if rep.Parallel, err = measureParallel(p, scale, tr); err != nil {
		return rep, err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return rep, err
	}
	return rep, os.WriteFile(path, append(out, '\n'), 0o644)
}

func main() {
	var (
		scale      = flag.Int("scale", 0, "workload scale (0 = default)")
		fig        = flag.Int("fig", 0, "only this figure (3, 9, 10, 11, 12, 13, 14, 15); 0 = all")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		related    = flag.Bool("related", false, "also run the related-work comparison (VC, LCC) and the energy estimate")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		benchjson  = flag.String("benchjson", "", "skip the figures; measure simulator throughput per configuration and write JSON to this file")
		benchname  = flag.String("benchname", "olden.health", "benchmark used by -benchjson")
		benchreps  = flag.Int("benchreps", 3, "timed repetitions per configuration for -benchjson")
		against    = flag.String("against", "", "with -benchjson: compare the run to this baseline report and fail on regression")
		regress    = flag.Float64("regress", 0.02, "with -against: tolerated per-config wall-time growth fraction")
		parallel   = flag.Int("parallel", 0, "simulation workers for the figure sweeps (0 = one per CPU)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event dump of this invocation's spans to this file (load in chrome://tracing or Perfetto)")
	)
	flag.Parse()

	// The span tracer is nil-safe end to end: without -trace-out every
	// instrumentation hook is a single nil check.
	var tracer *span.Tracer
	var root *span.Span
	if *traceOut != "" {
		tracer = span.New(0)
		root = tracer.Start("cppbench", nil,
			span.Int("gomaxprocs", int64(runtime.GOMAXPROCS(0))),
			span.Int("num_cpu", int64(runtime.NumCPU())))
	}
	dumpTrace := func() {
		if tracer == nil {
			return
		}
		root.End()
		if err := os.WriteFile(*traceOut, tracer.Chrome(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cppbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d spans -> %s\n", tracer.Len(), *traceOut)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cppbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cppbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cppbench:", err)
			}
		}()
	}

	if *benchjson != "" {
		benchScale := *scale
		if benchScale == 0 {
			benchScale = 1
		}
		rep, err := runBenchJSON(*benchjson, *benchname, benchScale, *benchreps, root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppbench:", err)
			os.Exit(1)
		}
		dumpTrace()
		if *against != "" {
			if err := compareAgainst(rep, *against, *regress); err != nil {
				fmt.Fprintln(os.Stderr, "cppbench:", err)
				os.Exit(1)
			}
		}
		return
	}
	if *against != "" {
		fmt.Fprintln(os.Stderr, "cppbench: -against requires -benchjson")
		os.Exit(2)
	}

	s := cppcache.NewSuite(cppcache.SuiteOptions{Scale: *scale, Workers: *parallel, Trace: root})
	show := func(t *cppcache.Table, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "cppbench:", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Println("#", t.Title)
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t)
		}
	}

	start := time.Now()
	want := func(n int) bool { return *fig == 0 || *fig == n }

	if want(3) {
		show(s.Figure3())
	}
	if want(9) {
		fmt.Println(cppcache.BaselineDescription())
	}
	if want(10) {
		show(s.Figure10())
	}
	if want(11) {
		show(s.Figure11())
	}
	if want(12) {
		show(s.Figure12())
	}
	if want(13) {
		show(s.Figure13())
	}
	if want(14) {
		show(s.Figure14())
	}
	if want(15) {
		show(s.Figure15())
	}
	if *related {
		show(s.RelatedWorkTime())
		show(s.RelatedWorkTraffic())
		show(s.Energy())
	}
	if *fig == 0 {
		show(s.InstructionMix())
	}
	fmt.Fprintf(os.Stderr, "total time: %s\n", time.Since(start).Round(time.Millisecond))
	dumpTrace()
}
