package cppcache

import (
	"cppcache/internal/cpu"
	"cppcache/internal/experiments"
	"cppcache/internal/memsys"
	"cppcache/internal/span"
	"cppcache/internal/stats"
)

// Table is a named grid of values: rows are benchmarks, columns are
// configurations or metrics, exactly as the paper's figures present them.
type Table struct {
	Title string
	Note  string
	Rows  []string
	Cols  []string
	Cells [][]float64
}

func fromStats(t *stats.Table) *Table {
	return &Table{Title: t.Title, Note: t.Note, Rows: t.Rows, Cols: t.Cols, Cells: t.Cells}
}

// String renders the table as aligned ASCII.
func (t *Table) String() string { return t.toStats().String() }

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string { return t.toStats().CSV() }

// Get reads a cell by row and column name.
func (t *Table) Get(row, col string) float64 { return t.toStats().Get(row, col) }

func (t *Table) toStats() *stats.Table {
	return &stats.Table{Title: t.Title, Note: t.Note, Rows: t.Rows, Cols: t.Cols, Cells: t.Cells}
}

// Suite caches simulation results across figures so the experiments that
// share runs (Figures 10-15) simulate each benchmark x configuration pair
// only once. A zero SuiteOptions runs all 14 benchmarks at the default
// scale across all available CPUs.
type Suite struct{ s *experiments.Suite }

// SuiteOptions configures a Suite.
type SuiteOptions struct {
	Scale      int        // workload scale (0 = default, 4)
	Benchmarks []string   // nil = all 14
	Workers    int        // 0 = GOMAXPROCS
	Trace      *span.Span // optional parent span; each simulation run becomes a child span
}

// NewSuite builds an experiment suite.
func NewSuite(opt SuiteOptions) *Suite {
	return &Suite{s: experiments.NewSuite(experiments.Options{
		Scale:      opt.Scale,
		Benchmarks: opt.Benchmarks,
		Workers:    opt.Workers,
		Trace:      opt.Trace,
	})}
}

func (s *Suite) table(f func() (*stats.Table, error)) (*Table, error) {
	t, err := f()
	if err != nil {
		return nil, err
	}
	return fromStats(t), nil
}

// Figure3 reproduces the value-compressibility study: the fraction of
// dynamically accessed values that are small, pointer-like, or
// incompressible (paper average: 59% compressible).
func (s *Suite) Figure3() (*Table, error) { return s.table(s.s.Compressibility) }

// Figure10 reproduces the memory-traffic comparison, normalised to BC
// (paper averages: BCC 0.60, BCP 1.80, CPP 0.90).
func (s *Suite) Figure10() (*Table, error) { return s.table(s.s.MemoryTraffic) }

// Figure11 reproduces the execution-time comparison, normalised to BC
// (paper: CPP 7% faster than BC, 2% faster than HAC on average).
func (s *Suite) Figure11() (*Table, error) { return s.table(s.s.ExecutionTime) }

// Figure12 reproduces the L1 miss comparison (paper: CPP reduces the L1
// miss rate 14% on average).
func (s *Suite) Figure12() (*Table, error) {
	return s.table(func() (*stats.Table, error) { return s.s.CacheMisses(1) })
}

// Figure13 reproduces the L2 miss comparison.
func (s *Suite) Figure13() (*Table, error) {
	return s.table(func() (*stats.Table, error) { return s.s.CacheMisses(2) })
}

// Figure14 reproduces the miss-importance study: the fraction of
// instructions directly dependent on cache misses, estimated via Amdahl's
// law from a halved-miss-penalty run (paper: CPP reduces the importance of
// misses relative to BC and HAC).
func (s *Suite) Figure14() (*Table, error) { return s.table(s.s.MissImportance) }

// Figure15 reproduces the ready-queue study: the average ready-queue
// length during cycles with an outstanding miss, CPP vs HAC (paper:
// improvements up to 78%).
func (s *Suite) Figure15() (*Table, error) { return s.table(s.s.ReadyQueue) }

// InstructionMix is a supporting table: the opcode mix of every trace.
func (s *Suite) InstructionMix() (*Table, error) { return s.table(s.s.InstructionMix) }

func baselineTable() string {
	return experiments.BaselineTable(cpu.DefaultParams(), memsys.DefaultLatencies())
}

// SchemeTraffic runs the compressor-zoo comparison — one functional BCC
// run per workload x registered compression scheme, as off-chip traffic
// ratios to the uncompressed BC baseline, with a geomean row. Rows fan
// out across workers (0 = GOMAXPROCS); the table is identical for any
// worker count.
func SchemeTraffic(scale, workers int) (*Table, error) {
	t, err := experiments.SchemeTraffic(scale, workers)
	if err != nil {
		return nil, err
	}
	return fromStats(t), nil
}

// RelatedWorkTime compares CPP against the related-work designs the paper
// discusses in §5 — Jouppi's victim cache (VC) and the line-level
// compression cache (LCC) — on execution time, normalised to BC.
func (s *Suite) RelatedWorkTime() (*Table, error) {
	return s.table(func() (*stats.Table, error) { return s.s.RelatedWork("time") })
}

// RelatedWorkTraffic is RelatedWorkTime for off-chip traffic.
func (s *Suite) RelatedWorkTraffic() (*Table, error) {
	return s.table(func() (*stats.Table, error) { return s.s.RelatedWork("traffic") })
}

// Energy estimates each configuration's dynamic energy (linear event
// model), normalised to BC.
func (s *Suite) Energy() (*Table, error) { return s.table(s.s.Energy) }
