package cppcache

// Benchmarks for the simulator-throughput work: the shared trace
// pre-decode (struct-of-arrays replay vs generic stream iteration) and
// the work-stealing run scheduler's scaling. cmd/cppbench -benchjson
// emits the same measurements machine-readably (predecode and parallel
// sections of BENCH_simperf.json).

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"cppcache/internal/sched"
	"cppcache/internal/trace"
	"cppcache/internal/workload"
)

// BenchmarkTraceDecode measures building the pre-decoded representation
// itself — paid once per workload x scale and amortised across every run
// that replays it.
func BenchmarkTraceDecode(b *testing.B) {
	b.ReportAllocs()
	p, err := workload.BuildShared("olden.health", 1)
	if err != nil {
		b.Fatal(err)
	}
	insts := p.Insts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := trace.NewDecoded(insts)
		if d.Len() != len(insts) {
			b.Fatal("decode length mismatch")
		}
	}
	b.ReportMetric(float64(len(insts)), "insts")
}

// BenchmarkReplayStream iterates the generic isa.Stream path the
// simulator fetched from before the pre-decode fast path existed.
func BenchmarkReplayStream(b *testing.B) {
	b.ReportAllocs()
	p, err := workload.BuildShared("olden.health", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		st := p.Stream()
		for {
			in, ok := st.Next()
			if !ok {
				break
			}
			sink += uint64(in.Addr) + uint64(in.Op)
		}
	}
	if sink == 0 {
		b.Fatal("degenerate trace")
	}
	b.ReportMetric(float64(p.Len()), "insts/op")
}

// BenchmarkReplayPredecoded scans the shared struct-of-arrays columns the
// CPU's fast path fetches from, over the same trace as
// BenchmarkReplayStream.
func BenchmarkReplayPredecoded(b *testing.B) {
	b.ReportAllocs()
	p, err := workload.BuildShared("olden.health", 1)
	if err != nil {
		b.Fatal(err)
	}
	d := p.Decoded()
	ops, addrs := d.Ops(), d.Addrs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for j := range ops {
			sink += uint64(addrs[j]) + uint64(ops[j])
		}
	}
	if sink == 0 {
		b.Fatal("degenerate trace")
	}
	b.ReportMetric(float64(d.Len()), "insts/op")
}

// BenchmarkSchedulerScaling fans a fixed batch of independent BC runs
// over the work-stealing scheduler at 1, 2 and NumCPU workers. On a
// multi-core machine the per-op time should drop near-linearly with the
// worker count; on one core it measures the scheduler's overhead.
func BenchmarkSchedulerScaling(b *testing.B) {
	p, err := BuildBenchmark("olden.health", 1)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the shared decode outside the timed region.
	if _, err := RunProgram(p, BC, Options{Scale: 1}); err != nil {
		b.Fatal(err)
	}
	counts := []int{1}
	for _, w := range []int{2, runtime.NumCPU()} {
		if w > counts[len(counts)-1] {
			counts = append(counts, w)
		}
	}
	const runs = 4
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers_%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				err := sched.Do(context.Background(), runs, w,
					func(_ context.Context, _, _ int) error {
						_, err := RunProgram(p, BC, Options{Scale: 1})
						return err
					})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(runs, "runs/op")
		})
	}
}
