// Sweep explores the CPP design space with the public ablation API: the
// affiliated-line mask (which line is paired with which) and the victim
// placement policy (§3.3), plus the compressed-width study.
//
// Run with:
//
//	go run ./examples/sweep [-bench olden.health] [-scale 1]
package main

import (
	"flag"
	"fmt"

	"cppcache"
)

func main() {
	bench := flag.String("bench", "olden.health", "benchmark to sweep")
	scale := flag.Int("scale", 1, "workload scale")
	flag.Parse()
	opts := cppcache.Options{Scale: *scale}

	fmt.Printf("== affiliated-line mask sweep (%s) ==\n", *bench)
	fmt.Printf("%-10s %12s %12s %14s\n", "mask", "cycles", "aff hits", "prefetched")
	for _, mask := range []uint32{0x1, 0x2, 0x4, 0x8} {
		res, err := cppcache.RunCPPVariant(*bench, mask, true, opts)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%#-10x %12d %12d %14d\n",
			mask, res.Cycles, res.AffiliatedHitsL1, res.AffWordsPrefetched)
	}

	fmt.Printf("\n== victim placement ablation (%s) ==\n", *bench)
	for _, vp := range []bool{true, false} {
		res, err := cppcache.RunCPPVariant(*bench, 0x1, vp, opts)
		if err != nil {
			panic(err)
		}
		fmt.Printf("victimPlacement=%-5v cycles=%-10d L1 misses=%-8d traffic=%.0f\n",
			vp, res.Cycles, res.L1Misses, res.MemTrafficWords)
	}

	fmt.Println("\n== compressed-width study (synthetic value mix) ==")
	fmt.Println("payload bits -> fraction of a pointer+small+random mix compressible")
	vals := make([]uint32, 0, 3000)
	addrs := make([]uint32, 0, 3000)
	for i := 0; i < 1000; i++ {
		a := uint32(0x1000_0000 + i*64)
		vals = append(vals, uint32(i%100), a&^0x7FFF|uint32(i%0x8000)&^3, 0x9E37_79B9*uint32(i+1))
		addrs = append(addrs, a, a+4, a+8)
	}
	for _, w := range []int{7, 11, 15, 23, 31} {
		comp := 0
		for i := range vals {
			if cppcache.CompressibleWordWidth(vals[i], addrs[i], w) {
				comp++
			}
		}
		marker := ""
		if w == 15 {
			marker = "   <- the paper's choice"
		}
		fmt.Printf("  %2d bits: %5.1f%%%s\n", w, 100*float64(comp)/float64(len(vals)), marker)
	}
}
