// Quickstart: the value-compression scheme and a standalone CPP cache.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"cppcache"
)

func main() {
	// 1. The compression scheme (§2.1 of the paper): small values and
	// pointers sharing their address's 32K chunk compress to 16 bits.
	fmt.Println("-- value compression --")
	for _, v := range []struct {
		value, addr uint32
		what        string
	}{
		{42, 0x1000_0000, "small positive value"},
		{0xFFFF_FFF0, 0x1000_0000, "small negative value (-16)"},
		{0x1000_1ABC, 0x1000_0040, "pointer in the same 32K chunk"},
		{0xDEAD_8001, 0x1000_0000, "random large value"},
	} {
		c, ok := cppcache.CompressWord(v.value, v.addr)
		if ok {
			back := cppcache.DecompressWord(c, v.addr)
			fmt.Printf("%-32s 0x%08x -> 0x%04x -> 0x%08x\n", v.what, v.value, c, back)
		} else {
			fmt.Printf("%-32s 0x%08x -> incompressible\n", v.what, v.value)
		}
	}

	// 2. A standalone CPP hierarchy: write two consecutive lines of
	// compressible values, then force a conflict. CPP's two mechanisms
	// both show up: the conflicting fetch prefetches its own partner's
	// words into the freed half-slots, and the evicted line's words are
	// salvaged into ITS partner's frame (victim placement, §3.3) — so
	// what would be two 10-cycle L2 misses become 2- and 1-cycle hits.
	fmt.Println("\n-- partial cache line prefetching --")
	sys, err := cppcache.NewSystem(cppcache.CPP)
	if err != nil {
		panic(err)
	}
	base := uint32(0x1000_0000)
	for i := uint32(0); i < 32; i++ { // two 64-byte lines of small values
		sys.Write(base+i*4, i)
	}
	// Push both lines out of the L1 by touching conflicting addresses
	// (the 8K direct-mapped L1 aliases every 8K).
	sys.Read(base + (8 << 10))
	sys.Read(base + (8 << 10) + 64)

	_, lat0 := sys.Read(base)
	_, lat1 := sys.Read(base + 64)
	fmt.Printf("line 0 access after eviction: %3d cycles (salvaged into its affiliated place)\n", lat0)
	fmt.Printf("line 1 access right after:    %3d cycles (still resident: the conflict was absorbed)\n", lat1)

	snap := sys.Snapshot()
	fmt.Printf("affiliated hits: %d, words prefetched: %d\n",
		snap.AffiliatedHitsL1, snap.AffWordsPrefetched)

	// 3. One full benchmark run.
	fmt.Println("\n-- one benchmark, two configurations --")
	for _, cfg := range []cppcache.CacheConfig{cppcache.BC, cppcache.CPP} {
		res, err := cppcache.Run("olden.health", cfg, cppcache.Options{Scale: 1})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-4s cycles=%-8d L1 miss rate=%5.2f%% traffic=%.0f words\n",
			cfg, res.Cycles, 100*res.L1MissRate(), res.MemTrafficWords)
	}
}
