// Treeadd runs the olden.treeadd workload across all five cache
// configurations and prints a Figure 11-style comparison row.
//
// Run with:
//
//	go run ./examples/treeadd [-scale 2]
package main

import (
	"flag"
	"fmt"

	"cppcache"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale")
	flag.Parse()

	fmt.Printf("%-5s %12s %8s %12s %12s %12s\n",
		"cfg", "cycles", "IPC", "L1 misses", "L2 misses", "traffic")
	var base float64
	for _, cfg := range cppcache.Configs() {
		res, err := cppcache.Run("olden.treeadd", cfg, cppcache.Options{Scale: *scale})
		if err != nil {
			panic(err)
		}
		if cfg == cppcache.BC {
			base = float64(res.Cycles)
		}
		fmt.Printf("%-5s %12d %8.3f %12d %12d %12.0f   (%.2fx BC)\n",
			cfg, res.Cycles, res.IPC, res.L1Misses, res.L2Misses,
			res.MemTrafficWords, float64(res.Cycles)/base)
	}
}
