// Linkedlist reproduces the paper's motivating example (§2.2, Figures 5
// and 6): a linked list whose nodes hold two pointers, a small type field
// and one large "info" value. Under CPP, the three compressible fields of
// the next node ride along with each fetched line, so the traversal's
// cache miss moves off the critical pointer-chasing path and onto the
// rarely-needed info field.
//
// Run with:
//
//	go run ./examples/linkedlist
package main

import (
	"fmt"

	"cppcache"
)

const (
	nodes    = 4096 // well past the 64K L2
	nodeSize = 64   // one node per L1 line, as Figure 5's allocator assumes
	typeT    = 1
	sweeps   = 3
)

// buildList constructs the Figure 5 workload: sum the info field of all
// nodes whose type field is T.
func buildList() *cppcache.Program {
	tb := cppcache.NewTraceBuilder(5)

	// struct node { node *next; int type; int info; node *prev; }
	addrs := make([]uint32, nodes)
	for i := range addrs {
		addrs[i] = tb.Alloc(nodeSize, nodeSize)
	}
	for i, a := range addrs {
		tb.SetPC(0x1000)
		next := uint32(0)
		if i+1 < nodes {
			next = addrs[i+1]
		}
		tb.Store(a+0, next, cppcache.NoReg, cppcache.NoReg)
		tb.Store(a+4, uint32(i%3), cppcache.NoReg, cppcache.NoReg) // type: T for 1/3 of nodes
		tb.Store(a+8, 0xDEAD0000|uint32(i)|0x8000, cppcache.NoReg, cppcache.NoReg)
		prev := uint32(0)
		if i > 0 {
			prev = addrs[i-1]
		}
		tb.Store(a+12, prev, cppcache.NoReg, cppcache.NoReg)
	}

	// while (p) { if (p->type == T) sum += p->info; p = p->next; }
	for s := 0; s < sweeps; s++ {
		cur := addrs[0]
		dep := cppcache.NoReg
		var sum cppcache.Reg = cppcache.NoReg
		for i := 0; cur != 0; i++ {
			tb.SetPC(0x2000)
			typ := tb.Load(cur+4, dep) // (1) type check
			isT := tb.Peek(cur+4) == typeT
			tb.Branch(typ, isT)
			if isT {
				tb.SetPC(0x2020)
				info := tb.Load(cur+8, dep) // (3) the big info field
				if sum == cppcache.NoReg {
					sum = info
				} else {
					sum = tb.ALU(sum, info)
				}
			}
			tb.SetPC(0x2040)
			next := tb.Load(cur+0, dep) // (2)/(4) chase the next pointer
			cur = tb.Peek(cur + 0)
			dep = next
		}
	}
	return tb.Program("figure5.linkedlist")
}

func main() {
	p := buildList()
	fmt.Printf("workload: %s, %d instructions\n\n", p.Name(), p.Len())
	fmt.Printf("%-5s %10s %10s %12s %10s %9s\n",
		"cfg", "cycles", "L1 misses", "aff hits", "traffic", "vs BC")

	var bcCycles int64
	for _, cfg := range cppcache.Configs() {
		res, err := cppcache.RunProgram(p, cfg, cppcache.Options{})
		if err != nil {
			panic(err)
		}
		if cfg == cppcache.BC {
			bcCycles = res.Cycles
		}
		fmt.Printf("%-5s %10d %10d %12d %10.0f %8.1f%%\n",
			cfg, res.Cycles, res.L1Misses, res.AffiliatedHitsL1,
			res.MemTrafficWords, 100*float64(res.Cycles)/float64(bcCycles))
	}

	fmt.Println("\nThe node's next/type/prev fields are compressible, so CPP")
	fmt.Println("prefetches them with the previous line: the pointer chase and")
	fmt.Println("type test hit in the affiliated line, and only the large info")
	fmt.Println("field - off the critical path - still misses (Figure 6).")
}
