module cppcache

go 1.22
